"""Query workload generators (Section 6.1.3, following Bruno et al. [7]).

A workload is specified by the distribution of query *centers* and a
*target measure* every query has to meet:

* **DT** — data-distributed centers, target selectivity (1% of tuples):
  well-defined user queries returning similar tuple counts.
* **DV** — data-distributed centers, target volume (1% of the data
  space): explorative queries with widely varying selectivities.
* **UT** — uniform centers, target selectivity: random workload with
  highly diverse query volumes.
* **UV** — uniform centers, target volume: random workload, mostly
  empty queries.

Selectivity targets are met by bisection on a scale factor around the
center (the matching fraction grows monotonically with the box size);
volume targets are met in closed form by splitting the target volume
across dimensions with random (Dirichlet-distributed) proportions, so
query shapes vary like real workloads do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geometry import Box

__all__ = ["WORKLOAD_KINDS", "WorkloadSpec", "generate_workload"]

WORKLOAD_KINDS = ("DT", "DV", "UT", "UV")


@dataclass(frozen=True)
class WorkloadSpec:
    """Decoded workload kind: center distribution x target measure."""

    #: ``"data"`` or ``"uniform"``.
    centers: str
    #: ``"selectivity"`` or ``"volume"``.
    target: str

    @classmethod
    def from_kind(cls, kind: str) -> "WorkloadSpec":
        kind = kind.upper()
        if kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {kind!r}; expected one of {WORKLOAD_KINDS}"
            )
        return cls(
            centers="data" if kind[0] == "D" else "uniform",
            target="selectivity" if kind[1] == "T" else "volume",
        )


def _volume_box(
    center: np.ndarray,
    bounds: Box,
    target_volume_fraction: float,
    rng: np.random.Generator,
) -> Box:
    """A box of the requested volume fraction with random side proportions."""
    d = bounds.dimensions
    ranges = bounds.widths
    # Split log-volume across dimensions via a Dirichlet draw, so boxes
    # are not always cubes; concentration > 1 keeps aspect ratios sane.
    shares = rng.dirichlet(np.full(d, 4.0))
    widths = ranges * target_volume_fraction ** shares
    low = np.clip(center - widths / 2.0, bounds.low, bounds.high)
    high = np.clip(center + widths / 2.0, bounds.low, bounds.high)
    return Box(low, high)


def _selectivity_box(
    center: np.ndarray,
    bounds: Box,
    data: np.ndarray,
    target_selectivity: float,
    rng: np.random.Generator,
    tolerance: float,
    max_iterations: int = 40,
) -> Box:
    """Bisection on the box scale until the selectivity target is met."""
    d = bounds.dimensions
    shares = rng.dirichlet(np.full(d, 4.0))
    # Base half-widths with random proportions; at scale factor 1 the box
    # roughly spans the domain (clipped to the bounds below).
    base_half = bounds.widths * shares * d / 2.0

    def box_at(scale: float) -> Box:
        low = np.maximum(center - scale * base_half, bounds.low)
        high = np.minimum(center + scale * base_half, bounds.high)
        return Box(low, high)

    def selectivity_at(scale: float) -> float:
        return float(box_at(scale).contains_points(data).mean())

    lo, hi = 0.0, 1.0
    # Ensure the upper bracket reaches the target (it may not if the
    # center sits in a sparse corner); expand a few times, then accept.
    for _ in range(8):
        if selectivity_at(hi) >= target_selectivity:
            break
        hi *= 2.0
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        value = selectivity_at(mid)
        if abs(value - target_selectivity) <= tolerance * target_selectivity:
            return box_at(mid)
        if value < target_selectivity:
            lo = mid
        else:
            hi = mid
    return box_at((lo + hi) / 2.0)


def generate_workload(
    data: np.ndarray,
    kind: str,
    count: int,
    rng: np.random.Generator,
    target: float = 0.01,
    bounds: Optional[Box] = None,
    tolerance: float = 0.1,
    search_data: Optional[np.ndarray] = None,
) -> List[Box]:
    """Generate ``count`` queries of the given workload ``kind``.

    Parameters
    ----------
    data:
        The dataset the workload runs against (used for data-distributed
        centers and selectivity-target search).
    kind:
        One of ``DT``, ``DV``, ``UT``, ``UV``.
    count:
        Number of queries.
    rng:
        Source of randomness.
    target:
        Target selectivity or volume fraction (the paper uses 1%).
    bounds:
        Data-space box; derived from ``data`` when omitted.
    tolerance:
        Relative tolerance for selectivity targets.
    search_data:
        Optional subsample used for the bisection counts (a speed knob
        for very large datasets; queries remain valid boxes either way).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("data must be a non-empty (n, d) array")
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 < target <= 1.0:
        raise ValueError("target must lie in (0, 1]")
    spec = WorkloadSpec.from_kind(kind)
    bounds = bounds or Box.bounding(data)
    search = (
        np.asarray(search_data, dtype=np.float64)
        if search_data is not None
        else data
    )

    queries: List[Box] = []
    for _ in range(count):
        if spec.centers == "data":
            center = data[rng.integers(data.shape[0])]
        else:
            center = rng.uniform(bounds.low, bounds.high)
        if spec.target == "volume":
            queries.append(_volume_box(center, bounds, target, rng))
        else:
            queries.append(
                _selectivity_box(center, bounds, search, target, rng, tolerance)
            )
    return queries
