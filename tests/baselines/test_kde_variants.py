"""Tests for the KDE estimator variants of the evaluation (Section 6.1.1)."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.gradient import QueryFeedback
from repro.core.model import ArrayRowSource
from repro.baselines.kde_variants import (
    AdaptiveKDE,
    BatchKDE,
    HeuristicKDE,
    SCVKDE,
)

from ..conftest import random_data_centered_queries, true_selectivity


@pytest.fixture
def bimodal(rng):
    return np.vstack(
        [
            rng.normal(loc=0.0, scale=0.1, size=(5000, 2)),
            rng.normal(loc=3.0, scale=0.1, size=(5000, 2)),
        ]
    )


@pytest.fixture
def sample(bimodal, rng):
    return bimodal[rng.choice(len(bimodal), size=512, replace=False)]


@pytest.fixture
def workload(bimodal, rng):
    queries = random_data_centered_queries(
        bimodal, 60, rng, width_range=(0.1, 0.5)
    )
    return [QueryFeedback(q, true_selectivity(bimodal, q)) for q in queries]


def mean_abs_error(estimator, workload):
    return float(
        np.mean(
            [abs(estimator.estimate(fb.query) - fb.selectivity) for fb in workload]
        )
    )


class TestHeuristic:
    def test_uses_scott(self, sample):
        est = HeuristicKDE(sample)
        np.testing.assert_allclose(est.bandwidth, scott_bandwidth(sample))

    def test_name_and_memory(self, sample):
        est = HeuristicKDE(sample)
        assert est.name == "Heuristic"
        assert est.memory_bytes() == 512 * 2 * 4

    def test_feedback_is_noop(self, sample):
        est = HeuristicKDE(sample)
        before = est.bandwidth
        est.feedback(Box([-1.0, -1.0], [1.0, 1.0]), 0.5)
        np.testing.assert_array_equal(est.bandwidth, before)

    def test_estimate_many(self, sample):
        est = HeuristicKDE(sample)
        boxes = [Box([-1.0, -1.0], [1.0, 1.0]), Box([2.0, 2.0], [4.0, 4.0])]
        results = est.estimate_many(boxes)
        assert results.shape == (2,)


class TestSCV:
    def test_beats_heuristic_on_bimodal(self, sample, workload):
        assert mean_abs_error(SCVKDE(sample, seed=0), workload) < mean_abs_error(
            HeuristicKDE(sample), workload
        )

    def test_name(self, sample):
        assert SCVKDE(sample, max_points=128).name == "SCV"


class TestBatch:
    def test_beats_heuristic(self, sample, workload):
        train, test = workload[:30], workload[30:]
        batch = BatchKDE(sample, train, starts=4, seed=0)
        assert mean_abs_error(batch, test) <= mean_abs_error(
            HeuristicKDE(sample), test
        )

    def test_optimization_diagnostics(self, sample, workload):
        batch = BatchKDE(sample, workload[:20], starts=2, seed=1)
        assert batch.optimization.loss <= batch.optimization.initial_loss

    def test_requires_training_queries(self, sample):
        with pytest.raises(ValueError):
            BatchKDE(sample, [])


class TestAdaptive:
    def test_starts_at_scott(self, sample):
        est = AdaptiveKDE(sample)
        np.testing.assert_allclose(est.bandwidth, scott_bandwidth(sample))

    def test_learns_from_feedback(self, bimodal, sample, workload, rng):
        est = AdaptiveKDE(
            sample,
            row_source=ArrayRowSource(bimodal),
            population_size=len(bimodal),
            seed=0,
        )
        before = mean_abs_error(est, workload)
        for _ in range(4):  # several epochs over the workload
            for fb in workload:
                est.estimate(fb.query)
                est.feedback(fb.query, fb.selectivity)
        after = mean_abs_error(est, workload)
        assert after < before

    def test_insert_delete_forwarding(self, sample):
        est = AdaptiveKDE(sample, population_size=512, seed=0)
        population_before = est.model.reservoir.population_size
        est.on_insert(np.array([9.0, 9.0]))
        est.on_delete()
        assert est.model.reservoir.population_size == population_before

    def test_memory(self, sample):
        assert AdaptiveKDE(sample).memory_bytes() == 512 * 2 * 4


class TestRanking:
    def test_paper_ordering_on_bimodal(self, bimodal, sample, workload, rng):
        """The headline result of Figure 4/5 on a clearly non-normal
        dataset: Batch beats SCV beats Heuristic."""
        train, test = workload[:40], workload[40:]
        heuristic_error = mean_abs_error(HeuristicKDE(sample), test)
        scv_error = mean_abs_error(SCVKDE(sample, seed=0), test)
        batch_error = mean_abs_error(BatchKDE(sample, train, seed=0), test)
        assert batch_error < heuristic_error
        assert scv_error < heuristic_error
        assert batch_error <= scv_error * 1.2
