"""Tests for the direct plug-in bandwidth selector."""

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.baselines.plugin import plugin_bandwidth, plugin_bandwidth_1d


class TestPlugin1D:
    def test_near_amise_on_normal_data(self, rng):
        """For standard normal data the AMISE-optimal bandwidth is
        (4 / (3 n))^{1/5} sigma; DPI should land close."""
        n = 2000
        values = rng.normal(size=n)
        expected = (4.0 / (3.0 * n)) ** 0.2
        assert plugin_bandwidth_1d(values) == pytest.approx(expected, rel=0.2)

    def test_scale_equivariance(self, rng):
        values = rng.normal(size=800)
        h1 = plugin_bandwidth_1d(values)
        h2 = plugin_bandwidth_1d(values * 7.0)
        assert h2 == pytest.approx(7.0 * h1, rel=0.05)

    def test_narrower_than_scott_on_bimodal(self, rng):
        values = np.concatenate(
            [rng.normal(0, 0.2, 1000), rng.normal(5, 0.2, 1000)]
        )
        h_plugin = plugin_bandwidth_1d(values)
        h_scott = scott_bandwidth(values[:, None])[0]
        assert h_plugin < 0.5 * h_scott

    def test_constant_data(self):
        assert plugin_bandwidth_1d(np.full(100, 3.0)) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            plugin_bandwidth_1d(np.array([1.0]))


class TestPluginMultivariate:
    def test_shape_and_positivity(self, small_sample):
        h = plugin_bandwidth(small_sample)
        assert h.shape == (3,)
        assert (h > 0).all()

    def test_deterministic(self, small_sample):
        np.testing.assert_array_equal(
            plugin_bandwidth(small_sample, seed=1),
            plugin_bandwidth(small_sample, seed=1),
        )

    def test_subsampling(self, rng):
        data = rng.normal(size=(10_000, 2))
        h = plugin_bandwidth(data, max_points=256, seed=0)
        assert (h > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            plugin_bandwidth(np.zeros((1, 2)))

    def test_improves_over_scott_on_clustered(self, rng):
        """Like SCV: on clearly non-normal data the plug-in bandwidth
        gives better selectivity estimates than the normal reference."""
        from repro.geometry import Box
        from repro.core import KernelDensityEstimator

        data = np.vstack(
            [
                rng.normal(0.0, 0.15, size=(4000, 2)),
                rng.normal(3.0, 0.15, size=(4000, 2)),
            ]
        )
        sample = data[rng.choice(len(data), 512, replace=False)]
        plugin_est = KernelDensityEstimator(sample, plugin_bandwidth(sample))
        scott_est = KernelDensityEstimator(sample, scott_bandwidth(sample))
        errors = {"plugin": [], "scott": []}
        for _ in range(40):
            center = data[rng.integers(len(data))]
            box = Box(center - 0.2, center + 0.2)
            truth = float(box.contains_points(data).mean())
            errors["plugin"].append(
                abs(plugin_est.selectivity(box) - truth)
            )
            errors["scott"].append(abs(scott_est.selectivity(box) - truth))
        assert np.mean(errors["plugin"]) < np.mean(errors["scott"])
