"""Protocol conformance: every estimator behind one harness surface.

The replay harness, the feedback loop and the bench experiments drive
every estimator through the same five calls — ``estimate``,
``estimate_many``, ``feedback``, ``feedback_many``, ``memory_bytes``.
This suite pins that surface for every registered factory kind *and*
every baseline wrapper, including the edge cases harnesses hit in
practice: empty batches, dimension mismatches, and one-shot (generator)
feedback iterables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AVIEstimator,
    AdaptiveKDE,
    HeuristicKDE,
    STHolesHistogram,
    SampleCountEstimator,
)
from repro.factory import ESTIMATOR_KINDS, create_estimator
from repro.geometry import Box

DIMENSIONS = 3


def _sample():
    rng = np.random.default_rng(42)
    return rng.normal(size=(128, DIMENSIONS))


def _queries(count=6):
    rng = np.random.default_rng(7)
    queries = []
    for _ in range(count):
        center = rng.normal(size=DIMENSIONS)
        width = rng.uniform(0.5, 1.5, size=DIMENSIONS)
        queries.append(Box(center - width, center + width))
    return queries


BUILDERS = {
    **{
        kind: (lambda kind=kind: create_estimator(_sample(), kind=kind))
        for kind in ESTIMATOR_KINDS
    },
    "heuristic-wrapper": lambda: HeuristicKDE(_sample()),
    "adaptive-wrapper": lambda: AdaptiveKDE(_sample(), seed=0),
    "sthole": lambda: STHolesHistogram(
        Box.bounding(_sample(), margin=1.0), row_count=128, max_buckets=32
    ),
    "avi": lambda: AVIEstimator(_sample(), buckets_per_dimension=16),
    "sampling": lambda: SampleCountEstimator(_sample()),
}


@pytest.fixture(params=sorted(BUILDERS))
def estimator(request):
    return BUILDERS[request.param]()


def test_factory_kinds_are_all_covered():
    assert set(ESTIMATOR_KINDS) <= set(BUILDERS)


def test_estimate_returns_probability(estimator):
    for query in _queries():
        value = estimator.estimate(query)
        assert isinstance(value, float)
        assert 0.0 <= value <= 1.0


def test_estimate_many_matches_looped_estimates(estimator):
    queries = _queries()
    batched = np.asarray(estimator.estimate_many(queries), dtype=np.float64)
    looped = np.array([estimator.estimate(q) for q in queries])
    assert batched.shape == (len(queries),)
    np.testing.assert_allclose(batched, looped, rtol=1e-9, atol=1e-12)


def test_estimate_many_empty_batch(estimator):
    result = np.asarray(estimator.estimate_many([]))
    assert result.shape == (0,)


def test_feedback_roundtrip(estimator):
    queries = _queries()
    for query in queries:
        estimator.estimate(query)
        estimator.feedback(query, 0.25)
    # Feedback must not push subsequent estimates out of [0, 1].
    for query in queries:
        assert 0.0 <= estimator.estimate(query) <= 1.0


def test_feedback_many_accepts_generators(estimator):
    """Regression: one-shot iterables must work (or fail on *mismatch*
    with ValueError), never die in ``len()`` with a TypeError."""
    queries = _queries(4)
    truths = (0.1 for _ in range(4))
    estimator.feedback_many(iter(queries), truths)


def test_feedback_many_generator_mismatch_is_value_error(estimator):
    queries = _queries(4)
    with pytest.raises(ValueError):
        estimator.feedback_many(queries, (0.1 for _ in range(3)))


def test_feedback_many_empty_batch_is_noop(estimator):
    estimator.feedback_many([], [])


def test_dimension_mismatch_raises(estimator):
    bad = Box(low=np.zeros(DIMENSIONS + 1), high=np.ones(DIMENSIONS + 1))
    with pytest.raises(ValueError):
        estimator.estimate(bad)


def test_memory_bytes_reports_a_positive_footprint(estimator):
    footprint = estimator.memory_bytes()
    assert isinstance(footprint, int)
    assert footprint > 0
