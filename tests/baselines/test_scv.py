"""Tests for the cross-validation bandwidth selectors."""

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.geometry import Box
from repro.baselines.scv import lscv_bandwidth, scv_bandwidth

from ..conftest import true_selectivity


@pytest.fixture
def bimodal(rng):
    return np.vstack(
        [
            rng.normal(loc=0.0, scale=0.2, size=(2000, 2)),
            rng.normal(loc=4.0, scale=0.2, size=(2000, 2)),
        ]
    )


@pytest.mark.parametrize("selector", [scv_bandwidth, lscv_bandwidth])
class TestSelectorContract:
    def test_positive(self, selector, small_sample):
        h = selector(small_sample)
        assert h.shape == (3,)
        assert (h > 0).all()

    def test_deterministic(self, selector, small_sample):
        np.testing.assert_array_equal(
            selector(small_sample, seed=3), selector(small_sample, seed=3)
        )

    def test_rejects_tiny_sample(self, selector):
        with pytest.raises(ValueError):
            selector(np.zeros((1, 2)))

    def test_subsampling_cap(self, selector, rng):
        data = rng.normal(size=(5000, 2))
        h = selector(data, max_points=128, seed=0)
        assert (h > 0).all()

    def test_scale_equivariance(self, selector, rng):
        """Scaling the data by c scales the selected bandwidth by ~c."""
        data = rng.normal(size=(400, 2))
        h1 = selector(data, seed=0)
        h2 = selector(data * 10.0, seed=0)
        np.testing.assert_allclose(h2, h1 * 10.0, rtol=0.15)


class TestSCVQuality:
    def test_narrower_than_scott_on_bimodal(self, bimodal, rng):
        """On multi-modal data the normal reference oversmooths; CV must
        select a clearly smaller bandwidth."""
        sample = bimodal[rng.choice(len(bimodal), size=400, replace=False)]
        h_scv = scv_bandwidth(sample, seed=0)
        h_scott = scott_bandwidth(sample)
        assert (h_scv < 0.7 * h_scott).all()

    def test_close_to_scott_on_gaussian(self, rng):
        """On truly normal data the normal reference is near-optimal, so
        CV should stay within a small factor of it."""
        data = rng.normal(size=(600, 2))
        h_scv = scv_bandwidth(data, seed=0)
        h_scott = scott_bandwidth(data[:512])
        ratio = h_scv / h_scott
        assert (ratio > 0.3).all() and (ratio < 2.0).all()

    def test_improves_selectivity_estimates_on_bimodal(self, bimodal, rng):
        sample = bimodal[rng.choice(len(bimodal), size=400, replace=False)]
        h_scv = scv_bandwidth(sample, seed=0)
        est_scv = KernelDensityEstimator(sample, h_scv)
        est_scott = KernelDensityEstimator(sample, scott_bandwidth(sample))
        errors_scv, errors_scott = [], []
        for _ in range(40):
            center = bimodal[rng.integers(len(bimodal))]
            box = Box(center - 0.3, center + 0.3)
            truth = true_selectivity(bimodal, box)
            errors_scv.append(abs(est_scv.selectivity(box) - truth))
            errors_scott.append(abs(est_scott.selectivity(box) - truth))
        assert np.mean(errors_scv) < np.mean(errors_scott)

    def test_pilot_override(self, small_sample):
        pilot = scott_bandwidth(small_sample) * 0.5
        h = scv_bandwidth(small_sample, pilot=pilot, seed=0)
        assert (h > 0).all()

    def test_rejects_bad_pilot(self, small_sample):
        with pytest.raises(ValueError):
            scv_bandwidth(small_sample, pilot=np.array([1.0]))
        with pytest.raises(ValueError):
            scv_bandwidth(small_sample, pilot=np.array([1.0, -1.0, 1.0]))
