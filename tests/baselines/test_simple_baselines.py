"""Tests for the AVI and naive-sampling baselines plus budget helpers."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.baselines.avi import AVIEstimator, Histogram1D
from repro.baselines.base import kde_sample_size, memory_budget_bytes
from repro.baselines.sampling import SampleCountEstimator


class TestHistogram1D:
    def test_full_range_is_one(self, rng):
        values = rng.normal(size=1000)
        hist = Histogram1D(values, 32)
        assert hist.selectivity(values.min(), values.max()) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_disjoint_range_is_zero(self, rng):
        hist = Histogram1D(rng.uniform(0, 1, 500), 16)
        assert hist.selectivity(5.0, 6.0) == 0.0
        assert hist.selectivity(2.0, 1.0) == 0.0

    def test_uniform_data_linear(self, rng):
        values = rng.uniform(0, 10, 50_000)
        hist = Histogram1D(values, 64)
        assert hist.selectivity(0.0, 5.0) == pytest.approx(0.5, abs=0.02)
        assert hist.selectivity(2.0, 3.0) == pytest.approx(0.1, abs=0.02)

    @pytest.mark.parametrize("equi_depth", [True, False])
    def test_bucketisations(self, rng, equi_depth):
        values = rng.exponential(size=5000)
        hist = Histogram1D(values, 32, equi_depth=equi_depth)
        median = float(np.median(values))
        assert hist.selectivity(0.0, median) == pytest.approx(0.5, abs=0.05)

    def test_constant_column(self):
        hist = Histogram1D(np.full(100, 7.0), 8)
        assert hist.selectivity(6.0, 8.0) == pytest.approx(1.0, abs=1e-9)
        assert hist.selectivity(8.0, 9.0) == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram1D(np.array([]), 8)
        with pytest.raises(ValueError):
            Histogram1D(np.ones(10), 0)

    def test_memory(self, rng):
        hist = Histogram1D(rng.normal(size=100), 16)
        assert hist.memory_bytes() > 0


class TestAVI:
    def test_exact_on_independent_data(self, rng):
        data = rng.uniform(0, 1, size=(100_000, 2))
        est = AVIEstimator(data, buckets_per_dimension=64)
        query = Box([0.2, 0.3], [0.6, 0.8])
        truth = float(query.contains_points(data).mean())
        assert est.estimate(query) == pytest.approx(truth, abs=0.01)

    def test_underestimates_correlated_data(self, rng):
        """The motivating failure: independence breaks on correlated data."""
        x = rng.normal(size=50_000)
        data = np.column_stack([x, x + rng.normal(scale=0.01, size=50_000)])
        est = AVIEstimator(data)
        query = Box([-0.5, -0.5], [0.5, 0.5])
        truth = float(query.contains_points(data).mean())
        assert est.estimate(query) < truth / 2

    def test_dimension_mismatch(self, rng):
        est = AVIEstimator(rng.normal(size=(100, 2)))
        with pytest.raises(ValueError):
            est.estimate(Box([0.0], [1.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            AVIEstimator(np.empty((0, 2)))

    def test_memory(self, rng):
        est = AVIEstimator(rng.normal(size=(100, 3)), buckets_per_dimension=8)
        assert est.memory_bytes() > 0


class TestSampleCount:
    def test_exact_on_sample(self, rng):
        sample = rng.uniform(0, 1, size=(1000, 2))
        est = SampleCountEstimator(sample)
        query = Box([0.0, 0.0], [0.5, 1.0])
        expected = float(query.contains_points(sample).mean())
        assert est.estimate(query) == expected

    def test_unbiasedness(self, rng):
        data = rng.normal(size=(20_000, 2))
        query = Box([-1.0, -1.0], [1.0, 1.0])
        truth = float(query.contains_points(data).mean())
        estimates = []
        for seed in range(30):
            inner = np.random.default_rng(seed)
            sample = data[inner.choice(len(data), size=256, replace=False)]
            estimates.append(SampleCountEstimator(sample).estimate(query))
        assert np.mean(estimates) == pytest.approx(truth, abs=0.02)

    def test_zero_for_empty_region(self, rng):
        est = SampleCountEstimator(rng.normal(size=(100, 2)))
        assert est.estimate(Box([100.0, 100.0], [101.0, 101.0])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleCountEstimator(np.empty((0, 2)))
        with pytest.raises(ValueError):
            SampleCountEstimator(np.zeros(5))

    def test_dimension_mismatch(self, rng):
        est = SampleCountEstimator(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            est.estimate(Box([0.0], [1.0]))


class TestBudgets:
    def test_paper_budget(self):
        assert memory_budget_bytes(3) == 3 * 4096
        assert memory_budget_bytes(8) == 8 * 4096

    def test_kde_sample_size_is_1024_under_default_budget(self):
        # s = d*4096 / (d*4) = 1024 for every d — the Section 6.2 setup.
        for d in (2, 3, 5, 8, 10):
            assert kde_sample_size(d) == 1024

    def test_explicit_budget(self):
        assert kde_sample_size(4, 4 * 4 * 2048) == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_budget_bytes(0)
