"""Tests for the STHoles multidimensional histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box
from repro.baselines.stholes import STHolesHistogram, sthole_bucket_budget


@pytest.fixture
def bimodal_data(rng):
    return np.vstack(
        [
            rng.normal(loc=0.0, scale=0.3, size=(5000, 2)),
            rng.normal(loc=3.0, scale=0.3, size=(5000, 2)),
        ]
    )


def make_histogram(data, max_buckets=64):
    bounds = Box.bounding(data, margin=0.1)

    def count(box):
        return int(box.contains_points(data).sum())

    return (
        STHolesHistogram(
            bounds, len(data), max_buckets=max_buckets, region_count=count
        ),
        count,
        bounds,
    )


def run_feedback(histogram, data, count, bounds, queries, rng):
    for _ in range(queries):
        center = data[rng.integers(len(data))]
        widths = rng.uniform(0.2, 1.0, data.shape[1])
        query = Box(center - widths, center + widths).clip_to(bounds)
        histogram.estimate(query)
        histogram.feedback(query, count(query) / len(data))


class TestConstruction:
    def test_initial_uniform_model(self):
        h = STHolesHistogram(Box([0.0, 0.0], [10.0, 10.0]), row_count=1000)
        # Uniformity: a quarter of the space holds a quarter of the rows.
        assert h.estimate(Box([0.0, 0.0], [5.0, 5.0])) == pytest.approx(0.25)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            STHolesHistogram(Box([0.0], [1.0]), row_count=-1)
        with pytest.raises(ValueError):
            STHolesHistogram(Box([0.0], [1.0]), row_count=10, max_buckets=0)

    def test_degenerate_bounds_padded(self):
        h = STHolesHistogram(Box([0.0, 1.0], [5.0, 1.0]), row_count=100)
        assert not h.root_box.is_degenerate()

    def test_initial_frequency_override(self):
        h = STHolesHistogram(
            Box([0.0], [1.0]), row_count=100, initial_frequency=0.0
        )
        assert h.estimate(Box([0.0], [1.0])) == 0.0

    def test_zero_rows(self):
        h = STHolesHistogram(Box([0.0], [1.0]), row_count=0)
        assert h.estimate(Box([0.0], [0.5])) == 0.0

    def test_bucket_budget_helper(self):
        assert sthole_bucket_budget(8, 8 * 4096) >= 2
        # More budget, more buckets; higher dimension, fewer buckets.
        assert sthole_bucket_budget(4, 32768) > sthole_bucket_budget(4, 8192)
        assert sthole_bucket_budget(2, 8192) > sthole_bucket_budget(10, 8192)


class TestEstimation:
    def test_estimates_in_unit_interval(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 50, rng)
        for _ in range(30):
            center = rng.uniform(bounds.low, bounds.high)
            query = Box(center - 0.3, center + 0.3).clip_to(bounds)
            assert 0.0 <= h.estimate(query) <= 1.0

    def test_disjoint_query_zero(self):
        h = STHolesHistogram(Box([0.0, 0.0], [1.0, 1.0]), row_count=100)
        assert h.estimate(Box([5.0, 5.0], [6.0, 6.0])) == 0.0

    def test_full_space_estimates_all_rows(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 30, rng)
        assert h.estimate(bounds) == pytest.approx(1.0, abs=0.15)

    def test_monotone_in_query(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 30, rng)
        small = Box([-0.5, -0.5], [0.5, 0.5])
        large = Box([-1.0, -1.0], [1.0, 1.0])
        assert h.estimate(large) >= h.estimate(small) - 1e-12


class TestRefinement:
    def test_feedback_improves_estimates(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        test_queries = []
        for _ in range(30):
            center = bimodal_data[rng.integers(len(bimodal_data))]
            widths = rng.uniform(0.2, 0.8, 2)
            q = Box(center - widths, center + widths).clip_to(bounds)
            test_queries.append((q, count(q) / len(bimodal_data)))

        def error():
            return float(
                np.mean([abs(h.estimate(q) - t) for q, t in test_queries])
            )

        before = error()
        run_feedback(h, bimodal_data, count, bounds, 120, rng)
        after = error()
        assert after < before / 2

    def test_exact_repeat_query(self, bimodal_data, rng):
        """After feedback on a query, re-estimating it is near-exact."""
        h, count, bounds = make_histogram(bimodal_data)
        query = Box([-0.5, -0.5], [0.5, 0.5])
        truth = count(query) / len(bimodal_data)
        h.estimate(query)
        h.feedback(query, truth)
        assert h.estimate(query) == pytest.approx(truth, abs=0.02)

    def test_rejects_bad_selectivity(self):
        h = STHolesHistogram(Box([0.0], [1.0]), row_count=10)
        with pytest.raises(ValueError):
            h.feedback(Box([0.0], [0.5]), -0.1)

    def test_drills_holes(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 20, rng)
        assert h.holes_drilled > 0
        assert h.bucket_count > 1

    def test_works_without_region_count(self, bimodal_data, rng):
        """The volume-scaled fallback keeps the histogram functional."""
        bounds = Box.bounding(bimodal_data, margin=0.1)
        h = STHolesHistogram(bounds, len(bimodal_data), max_buckets=64)
        test_query = Box([-0.6, -0.6], [0.6, 0.6])
        truth = float(
            test_query.contains_points(bimodal_data).mean()
        )
        before = abs(h.estimate(test_query) - truth)
        for _ in range(80):
            center = bimodal_data[rng.integers(len(bimodal_data))]
            widths = rng.uniform(0.2, 1.0, 2)
            q = Box(center - widths, center + widths).clip_to(bounds)
            t = float(q.contains_points(bimodal_data).mean())
            h.estimate(q)
            h.feedback(q, t)
        after = abs(h.estimate(test_query) - truth)
        assert after <= before


class TestInvariants:
    def test_budget_respected(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data, max_buckets=20)
        run_feedback(h, bimodal_data, count, bounds, 100, rng)
        assert h.bucket_count <= 20
        assert h.merges_performed > 0

    def test_frequencies_non_negative(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 100, rng)
        for _, frequency in h.buckets():
            assert frequency >= 0.0

    def test_children_nested_in_parents(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 100, rng)
        for bucket, parent in h._root.walk():
            if parent is not None:
                assert parent.box.contains_box(bucket.box)

    def test_sibling_boxes_disjoint_or_nested(self, bimodal_data, rng):
        """Exclusive volumes stay non-negative: holes never overlap."""
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 100, rng)
        for bucket, _ in h._root.walk():
            assert bucket.exclusive_volume() >= 0.0

    def test_total_frequency_tracks_row_count(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data)
        run_feedback(h, bimodal_data, count, bounds, 100, rng)
        assert h.total_frequency() == pytest.approx(
            len(bimodal_data), rel=0.35
        )

    def test_memory_accounting(self, bimodal_data, rng):
        h, count, bounds = make_histogram(bimodal_data, max_buckets=30)
        run_feedback(h, bimodal_data, count, bounds, 60, rng)
        assert h.memory_bytes() == h.bucket_count * (2 * 2 * 4 + 16)

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_budget_and_positivity_random_streams(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.uniform(0, 10, size=(2000, 2))
        bounds = Box([0.0, 0.0], [10.0, 10.0])

        def count(box):
            return int(box.contains_points(data).sum())

        h = STHolesHistogram(bounds, len(data), max_buckets=16,
                             region_count=count)
        for _ in range(40):
            center = rng.uniform(0, 10, 2)
            widths = rng.uniform(0.1, 3.0, 2)
            q = Box(center - widths, center + widths).clip_to(bounds)
            estimate = h.estimate(q)
            assert 0.0 <= estimate <= 1.0
            h.feedback(q, count(q) / len(data))
            assert h.bucket_count <= 16
            for _, frequency in h.buckets():
                assert frequency >= 0.0
