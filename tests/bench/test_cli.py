"""Tests for the benchmark command-line interface."""

import pytest

from repro.bench.cli import EXPERIMENTS, SCALES, main, run_experiment


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "small", "paper"}

    def test_paper_scale_matches_protocol(self):
        paper = SCALES["paper"]
        assert paper["repetitions"] == 25
        assert paper["test_queries"] == 300
        assert paper["train_queries"] == 100
        assert paper["rows"] is None  # full dataset cardinalities
        assert len(paper["datasets"]) == 5
        assert len(paper["workloads"]) == 4

    def test_scales_ordered_by_fidelity(self):
        assert (
            SCALES["smoke"]["repetitions"]
            <= SCALES["small"]["repetitions"]
            <= SCALES["paper"]["repetitions"]
        )


class TestCLI:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig4", "--scale", "galactic"])

    def test_run_experiment_unknown_name(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", "smoke")

    def test_experiment_list(self):
        assert "fig4" in EXPERIMENTS
        assert "all" in EXPERIMENTS

    def test_fig7_smoke_end_to_end(self):
        """fig7 is pure cost-model arithmetic, cheap enough for a unit
        test; it exercises the whole run_experiment plumbing."""
        report = run_experiment("fig7", "smoke", progress=False)
        assert "Figure 7" in report
        assert "STHoles" in report
        assert "scale=smoke" in report


class TestServingExperiment:
    def test_listed(self):
        assert "serving" in EXPERIMENTS
        from repro.bench.cli import SERVING_SCALE

        assert set(SERVING_SCALE) == set(SCALES)

    def test_smoke_end_to_end(self):
        report = run_experiment("serving", "smoke", progress=False)
        assert "Serving" in report
        assert "reads/s" in report
        assert "staleness" in report
        assert "publications" in report

    def test_checkpoint_round_trip(self, tmp_path):
        path = str(tmp_path / "serving.ckpt")
        cold = run_experiment(
            "serving", "smoke", progress=False, checkpoint=path
        )
        assert "cold start" in cold
        warm = run_experiment(
            "serving", "smoke", progress=False, checkpoint=path
        )
        assert "warm-started from" in warm
