"""Smoke tests for every experiment runner (tiny configurations)."""

import numpy as np
import pytest

from repro.bench.experiments import (
    run_adaptive_parameter_ablation,
    run_dynamic_quality,
    run_karma_ablation,
    run_log_update_ablation,
    run_model_size_quality,
    run_runtime_scaling,
    run_static_quality,
)
from repro.bench.metrics import win_matrix
from repro.bench.reporting import (
    render_dynamic,
    render_model_size,
    render_runtime,
    render_static_quality,
    render_win_matrix,
)


class TestStaticQuality:
    @pytest.fixture(scope="class")
    def result(self):
        return run_static_quality(
            dimensions=3,
            datasets=("synthetic",),
            workloads=("DT", "UV"),
            repetitions=2,
            rows=8_000,
            train_queries=15,
            test_queries=30,
            batch_starts=2,
        )

    def test_structure(self, result):
        assert set(result.errors) == {("synthetic", "DT"), ("synthetic", "UV")}
        cell = result.errors[("synthetic", "DT")]
        assert all(len(v) == 2 for v in cell.values())
        assert len(result.experiments) == 4

    def test_summary(self, result):
        summary = result.summary("synthetic", "DT")
        assert summary["Heuristic"].count == 2

    def test_win_matrix_integration(self, result):
        matrix = win_matrix(result.experiments)
        assert matrix.experiments == 4
        text = render_win_matrix(matrix)
        assert "Heuristic" in text

    def test_rendering(self, result):
        text = render_static_quality(result)
        assert "synthetic(3D)" in text
        assert "DT" in text


class TestModelSize:
    @pytest.fixture(scope="class")
    def result(self):
        return run_model_size_quality(
            sizes=(256, 1024),
            repetitions=2,
            rows=8_000,
            train_queries=15,
            test_queries=20,
            batch_starts=2,
        )

    def test_structure(self, result):
        assert result.sizes == [256, 1024]
        assert set(result.errors) == {"Heuristic", "Batch", "Adaptive"}

    def test_larger_models_not_worse(self, result):
        """Figure 6's shape: bigger samples help (allowing noise slack)."""
        curve = result.mean_curve("Heuristic")
        assert curve[-1] <= curve[0] * 1.5

    def test_rendering(self, result):
        text = render_model_size(result)
        assert "1024" in text


class TestRuntime:
    @pytest.fixture(scope="class")
    def result(self):
        return run_runtime_scaling(
            sizes=(1024, 8192, 65536), queries=10, data_rows=70_000
        )

    def test_series_present(self, result):
        assert set(result.seconds) == {
            "Heuristic GPU",
            "Adaptive GPU",
            "Heuristic CPU",
            "Adaptive CPU",
            "STHoles",
        }
        assert all(len(v) == 3 for v in result.seconds.values())

    def test_figure7_shape(self, result):
        gpu = result.series("Heuristic GPU")
        cpu = result.series("Heuristic CPU")
        stholes = result.series("STHoles")
        # Linear tail, flat start.
        assert gpu[-1] > gpu[0]
        # GPU wins on large models.
        assert cpu[-1] > 2 * gpu[-1]
        # STHoles cheap when small, expensive when large.
        assert stholes[0] < gpu[0]
        assert stholes[-1] > gpu[-1]

    def test_adaptive_offset(self, result):
        gap = result.series("Adaptive GPU") - result.series("Heuristic GPU")
        assert (gap > 0).all()
        assert gap.max() < 2 * gap.min() + 1e-9

    def test_rendering(self, result):
        assert "STHoles" in render_runtime(result)


class TestDynamic:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dynamic_quality(
            dimensions=3,
            runs=2,
            cycles=3,
            queries_per_cycle=20,
            tuples_per_cycle=400,
            initial_tuples=1200,
        )

    def test_structure(self, result):
        assert set(result.traces) == {"Heuristic", "STHoles", "Adaptive"}
        assert result.traces["Adaptive"].shape == (2, 60)
        assert result.cardinality.shape == (60,)

    def test_adaptive_wins_figure8(self, result):
        assert result.final_error("Adaptive", window=20) < result.final_error(
            "Heuristic", window=20
        )

    def test_rendering(self, result):
        text = render_dynamic(result, bins=5)
        assert "Adaptive" in text


class TestAblations:
    def test_log_update_ablation(self):
        result = run_log_update_ablation(
            datasets=("synthetic",),
            workloads=("DT",),
            repetitions=2,
            rows=6_000,
        )
        assert len(result.log_errors) == 2
        assert 0.0 <= result.log_win_fraction <= 1.0

    def test_karma_ablation(self):
        result = run_karma_ablation(
            dimensions=3, runs=1, cycles=3, queries_per_cycle=20
        )
        assert result.with_karma <= result.without_karma
        assert result.with_karma >= 0.0

    def test_parameter_ablation(self):
        result = run_adaptive_parameter_ablation(
            batch_sizes=(5, 10),
            losses=("squared",),
            repetitions=1,
            rows=6_000,
        )
        assert set(result.batch_size_errors) == {5, 10}
        assert set(result.loss_errors) == {"squared"}
