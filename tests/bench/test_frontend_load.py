"""Closed-loop front-end load sweep (slow; excluded from tier-1)."""

import pytest

from repro.bench.experiments import run_frontend_load
from repro.bench.reporting import render_frontend_load

pytestmark = pytest.mark.slow


def test_closed_loop_sweep_coalesces_and_sheds():
    result = run_frontend_load(
        sample_size=512,
        rows=4_000,
        clients=(8, 24),
        rates=(None,),
        requests_per_client=30,
        max_queue_depth=8,
    )
    cells = {cell.clients: cell for cell in result.cells}

    # Accounting is closed: every attempt either completed or shed.
    for cell in result.cells:
        assert cell.completed + cell.shed == cell.attempts
        assert cell.coalescing_factor >= 1.0

    # >= 8 concurrent closed-loop clients ride shared batches.
    assert cells[8].coalescing_factor > 1.0
    assert cells[8].shed == 0

    # Overload (clients > queue depth) sheds a nonzero fraction while
    # keeping the p99 of admitted requests bounded.
    overload = cells[24]
    assert overload.shed > 0
    assert overload.shed_rate > 0.0
    assert overload.completed > 0
    assert overload.p99_ms < 1_000.0


def test_think_time_reduces_pressure():
    result = run_frontend_load(
        sample_size=512,
        rows=4_000,
        clients=(8,),
        rates=(None, 50.0),
        requests_per_client=20,
        max_queue_depth=8,
    )
    unthrottled, throttled = result.cells
    assert unthrottled.rate is None and throttled.rate == 50.0
    # Think time spreads arrivals, so batches coalesce less.
    assert (
        throttled.coalescing_factor <= unthrottled.coalescing_factor
    )


def test_render_frontend_load_reports_every_cell():
    result = run_frontend_load(
        sample_size=256,
        rows=2_000,
        clients=(2, 8),
        rates=(None,),
        requests_per_client=10,
        max_queue_depth=8,
    )
    report = render_frontend_load(result)
    assert "clients" in report and "coalesce" in report
    assert report.count("\n") >= 2 + len(result.cells)
