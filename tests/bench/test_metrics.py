"""Tests for metric aggregation (error summaries and the win matrix)."""

import numpy as np
import pytest

from repro.bench.metrics import summarize, win_matrix


class TestSummarize:
    def test_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p25 == 2.0
        assert summary.p75 == 4.0

    def test_single_value(self):
        summary = summarize([0.5])
        assert summary.mean == summary.median == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row(self):
        assert len(summarize([1.0, 2.0]).as_row()) == 6


class TestWinMatrix:
    def test_basic(self):
        results = [
            {"A": 0.1, "B": 0.2},
            {"A": 0.3, "B": 0.2},
            {"A": 0.1, "B": 0.5},
            {"A": 0.1, "B": 0.9},
        ]
        matrix = win_matrix(results)
        assert matrix.wins("A", "B") == 75.0
        assert matrix.wins("B", "A") == 25.0
        assert matrix.experiments == 4

    def test_ties_count_for_neither(self):
        matrix = win_matrix([{"A": 0.5, "B": 0.5}])
        assert matrix.wins("A", "B") == 0.0
        assert matrix.wins("B", "A") == 0.0

    def test_three_estimators(self):
        results = [{"A": 1.0, "B": 2.0, "C": 3.0}] * 3
        matrix = win_matrix(results)
        assert matrix.wins("A", "C") == 100.0
        assert matrix.wins("C", "A") == 0.0
        assert matrix.wins("B", "C") == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            win_matrix([])
        with pytest.raises(ValueError):
            win_matrix([{"A": 1.0}, {"B": 1.0}])

    def test_nan_error_raises(self):
        # A silent NaN counts as a loss for both sides of every pairwise
        # comparison; the matrix must refuse it instead.
        results = [{"A": 0.1, "B": 0.2}, {"A": float("nan"), "B": 0.3}]
        with pytest.raises(ValueError, match="non-finite error"):
            win_matrix(results)

    def test_inf_error_raises(self):
        with pytest.raises(ValueError, match="non-finite error"):
            win_matrix([{"A": float("inf"), "B": 0.3}])

    def test_error_names_estimator_and_experiment(self):
        results = [{"A": 0.1, "B": 0.2}, {"A": 0.2, "B": float("nan")}]
        with pytest.raises(ValueError, match="'B' in experiment 1"):
            win_matrix(results)
