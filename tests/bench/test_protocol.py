"""Tests for the Section 6.2 experimental protocol."""

import numpy as np
import pytest

from repro.datasets import gunopulos_synthetic
from repro.bench.protocol import ALL_ESTIMATORS, TrialConfig, run_static_trial


@pytest.fixture(scope="module")
def data():
    return gunopulos_synthetic(rows=10_000, dimensions=3, seed=0)


@pytest.fixture(scope="module")
def trial(data):
    config = TrialConfig(
        dataset=data,
        workload="DT",
        train_queries=20,
        test_queries=40,
        batch_starts=2,
        scv_points=128,
    )
    return run_static_trial(config, seed=0)


class TestStaticTrial:
    def test_all_estimators_reported(self, trial):
        assert sorted(trial.errors) == sorted(ALL_ESTIMATORS)

    def test_errors_in_unit_interval(self, trial):
        for name, error in trial.errors.items():
            assert 0.0 <= error <= 1.0, name

    def test_per_query_consistency(self, trial):
        for name, per_query in trial.per_query.items():
            assert per_query.shape == (40,)
            assert trial.errors[name] == pytest.approx(float(per_query.mean()))

    def test_deterministic(self, data):
        config = TrialConfig(
            dataset=data,
            workload="UV",
            train_queries=10,
            test_queries=20,
            estimators=("Heuristic", "Batch"),
            batch_starts=2,
        )
        a = run_static_trial(config, seed=5)
        b = run_static_trial(config, seed=5)
        assert a.errors == b.errors

    def test_estimator_subset(self, data):
        config = TrialConfig(
            dataset=data,
            workload="UV",
            train_queries=10,
            test_queries=10,
            estimators=("Heuristic",),
        )
        result = run_static_trial(config, seed=0)
        assert list(result.errors) == ["Heuristic"]

    def test_unknown_estimator(self, data):
        config = TrialConfig(
            dataset=data,
            workload="UV",
            train_queries=5,
            test_queries=5,
            estimators=("Oracle",),
        )
        with pytest.raises(ValueError):
            run_static_trial(config, seed=0)

    def test_batch_beats_heuristic_on_clustered_data(self, trial):
        """The headline Figure 4 relationship on the synthetic dataset."""
        assert trial.errors["Batch"] <= trial.errors["Heuristic"] * 1.05


class TestExtendedEstimators:
    def test_extended_trial(self, data):
        from repro.bench.protocol import EXTENDED_ESTIMATORS

        config = TrialConfig(
            dataset=data,
            workload="DT",
            train_queries=10,
            test_queries=15,
            estimators=EXTENDED_ESTIMATORS,
            batch_starts=2,
            scv_points=128,
        )
        result = run_static_trial(config, seed=1)
        assert sorted(result.errors) == sorted(EXTENDED_ESTIMATORS)
        for name, error in result.errors.items():
            assert 0.0 <= error <= 1.0, name

    def test_plugin_only(self, data):
        config = TrialConfig(
            dataset=data,
            workload="UV",
            train_queries=5,
            test_queries=10,
            estimators=("Plugin",),
        )
        result = run_static_trial(config, seed=2)
        assert list(result.errors) == ["Plugin"]
