"""Tests for the plain-text result rendering."""

import numpy as np
import pytest

from repro.bench.experiments.dynamic_quality import DynamicQualityResult
from repro.bench.experiments.model_size import ModelSizeResult
from repro.bench.experiments.runtime import RuntimeResult
from repro.bench.experiments.static_quality import StaticQualityResult
from repro.bench.metrics import win_matrix
from repro.bench.reporting import (
    format_table,
    render_dynamic,
    render_model_size,
    render_runtime,
    render_static_quality,
    render_win_matrix,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", "1"], ["longer", "22"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # All rows padded to the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestRenderers:
    def test_static_quality(self):
        result = StaticQualityResult(
            dimensions=3,
            errors={
                ("power", "DT"): {
                    "Heuristic": [0.01, 0.02],
                    "Batch": [0.005, 0.006],
                }
            },
        )
        text = render_static_quality(result)
        assert "power(3D)" in text
        assert "0.0150" in text  # heuristic mean

    def test_win_matrix(self):
        matrix = win_matrix(
            [{"A": 0.1, "B": 0.2}, {"A": 0.1, "B": 0.05}]
        )
        text = render_win_matrix(matrix)
        assert "50.0" in text
        assert "2 experiments" in text

    def test_model_size(self):
        result = ModelSizeResult(
            sizes=[1024, 2048],
            errors={
                "Heuristic": {1024: [0.02], 2048: [0.01]},
                "Batch": {1024: [0.01], 2048: [0.005]},
            },
        )
        text = render_model_size(result)
        assert "1024" in text and "0.0050" in text

    def test_runtime(self):
        result = RuntimeResult(
            sizes=[1024],
            seconds={"Heuristic GPU": [0.0001], "STHoles": [0.0002]},
        )
        text = render_runtime(result)
        assert "0.100" in text  # 0.0001 s = 0.100 ms
        assert "[ms]" in text

    def test_dynamic(self):
        result = DynamicQualityResult(
            dimensions=5,
            traces={
                "Adaptive": np.full((2, 40), 0.01),
                "Heuristic": np.full((2, 40), 0.05),
            },
            cardinality=np.arange(40),
        )
        text = render_dynamic(result, bins=4)
        assert "Adaptive" in text
        assert "0.0500" in text

    def test_dynamic_more_bins_than_queries(self):
        result = DynamicQualityResult(
            dimensions=2,
            traces={"Adaptive": np.full((1, 3), 0.02)},
            cardinality=np.arange(3),
        )
        text = render_dynamic(result, bins=10)
        assert "Adaptive" in text
