"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Box


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests needing different streams reseed locally."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_data(rng: np.random.Generator) -> np.ndarray:
    """Correlated 3-D Gaussian dataset (20k rows) used across core tests."""
    mixing = np.array([[1.0, 0.5, 0.0], [0.0, 1.0, 0.3], [0.0, 0.0, 1.0]])
    return rng.normal(size=(20_000, 3)) @ mixing


@pytest.fixture
def small_sample(gaussian_data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A 256-point random sample of :func:`gaussian_data`."""
    indices = rng.choice(gaussian_data.shape[0], size=256, replace=False)
    return gaussian_data[indices]


def true_selectivity(data: np.ndarray, box: Box) -> float:
    """Brute-force fraction of rows of ``data`` inside ``box``."""
    inside = np.all((data >= box.low) & (data <= box.high), axis=1)
    return float(inside.mean())


def random_data_centered_queries(
    data: np.ndarray,
    count: int,
    rng: np.random.Generator,
    width_range=(0.5, 2.0),
):
    """Boxes centred on random data points with random widths."""
    queries = []
    for _ in range(count):
        center = data[rng.integers(data.shape[0])]
        widths = rng.uniform(*width_range, size=data.shape[1])
        queries.append(Box(center - widths / 2, center + widths / 2))
    return queries
