"""Tests for the online RMSprop bandwidth learner (Listing 1)."""

import numpy as np
import pytest

from repro.core.adaptive import RMSpropTuner
from repro.core.config import AdaptiveConfig


def make_tuner(dimensions=2, **overrides):
    defaults = dict(batch_size=3, log_updates=False)
    defaults.update(overrides)
    return RMSpropTuner(dimensions, AdaptiveConfig(**defaults))


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = AdaptiveConfig()
        assert cfg.batch_size == 10
        assert cfg.smoothing == 0.9
        assert cfg.learning_rate_min == 1e-6
        assert cfg.learning_rate_max == 50.0
        assert cfg.learning_rate_increase == 1.2
        assert cfg.learning_rate_decrease == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(batch_size=0),
            dict(smoothing=1.0),
            dict(smoothing=-0.1),
            dict(learning_rate_min=0.0),
            dict(learning_rate_max=1e-9),
            dict(learning_rate_increase=1.0),
            dict(learning_rate_decrease=1.0),
            dict(learning_rate_decrease=0.0),
            dict(initial_learning_rate=100.0),
            dict(epsilon=0.0),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)


class TestBatching:
    def test_no_update_until_batch_full(self):
        tuner = make_tuner(batch_size=3)
        h = np.array([1.0, 1.0])
        assert tuner.observe(np.array([0.1, 0.1]), h) is None
        assert tuner.observe(np.array([0.1, 0.1]), h) is None
        assert tuner.observe(np.array([0.1, 0.1]), h) is not None

    def test_pending_counter(self):
        tuner = make_tuner(batch_size=4)
        h = np.ones(2)
        for expected in (1, 2, 3):
            tuner.observe(np.array([0.1, 0.1]), h)
            assert tuner.pending == expected
        tuner.observe(np.array([0.1, 0.1]), h)
        assert tuner.pending == 0

    def test_counters(self):
        tuner = make_tuner(batch_size=2)
        h = np.ones(2)
        for _ in range(5):
            tuner.observe(np.array([0.1, -0.1]), h)
        assert tuner.observations == 5
        assert tuner.updates_applied == 2

    def test_reset_batch(self):
        tuner = make_tuner(batch_size=2)
        h = np.ones(2)
        tuner.observe(np.array([1.0, 1.0]), h)
        tuner.reset_batch()
        assert tuner.pending == 0
        assert tuner.observe(np.array([0.1, 0.1]), h) is None

    def test_batch_size_one_updates_every_query(self):
        tuner = make_tuner(batch_size=1)
        h = np.ones(2)
        assert tuner.observe(np.array([0.1, 0.1]), h) is not None


class TestUpdateDirection:
    def test_positive_gradient_shrinks_bandwidth(self):
        tuner = make_tuner(batch_size=1)
        h = np.array([1.0, 1.0])
        updated = tuner.observe(np.array([0.5, 0.5]), h)
        assert (updated < h).all()

    def test_negative_gradient_grows_bandwidth(self):
        tuner = make_tuner(batch_size=1)
        h = np.array([1.0, 1.0])
        updated = tuner.observe(np.array([-0.5, -0.5]), h)
        assert (updated > h).all()

    def test_zero_gradient_no_change(self):
        tuner = make_tuner(batch_size=1)
        h = np.array([2.0, 3.0])
        updated = tuner.observe(np.zeros(2), h)
        np.testing.assert_allclose(updated, h)

    def test_per_dimension_independence(self):
        tuner = make_tuner(batch_size=1)
        h = np.array([1.0, 1.0])
        updated = tuner.observe(np.array([0.5, -0.5]), h)
        assert updated[0] < 1.0 < updated[1]


class TestPositivity:
    def test_linear_safeguard_half_bandwidth(self):
        # A huge positive gradient may not push the bandwidth below half
        # its current value (Section 4.1).
        tuner = make_tuner(batch_size=1, initial_learning_rate=50.0)
        h = np.array([1.0, 1.0])
        updated = tuner.observe(np.array([100.0, 100.0]), h)
        np.testing.assert_allclose(updated, h / 2.0)
        assert (updated > 0).all()

    def test_log_updates_always_positive(self):
        tuner = make_tuner(batch_size=1, log_updates=True,
                           initial_learning_rate=50.0)
        h = np.array([1.0, 1.0])
        for _ in range(20):
            h = tuner.observe(np.array([100.0, 100.0]), h)
            assert (h > 0).all()

    def test_repeated_attacks_never_reach_zero(self):
        tuner = make_tuner(batch_size=1, initial_learning_rate=50.0)
        h = np.array([1.0, 1.0])
        for _ in range(100):
            h = tuner.observe(np.array([1000.0, 1000.0]), h)
        assert (h > 0).all()


class TestLearningRateAdaptation:
    def test_rate_grows_on_agreement(self):
        tuner = make_tuner(batch_size=1)
        h = np.ones(2)
        initial = tuner.learning_rates.copy()
        # First update has prev gradient zero -> no adaptation yet.
        h = tuner.observe(np.array([0.1, 0.1]), h)
        h = tuner.observe(np.array([0.1, 0.1]), h)
        assert (tuner.learning_rates > initial).all()

    def test_rate_shrinks_on_flip(self):
        tuner = make_tuner(batch_size=1)
        h = np.ones(2)
        h = tuner.observe(np.array([0.1, 0.1]), h)
        before = tuner.learning_rates.copy()
        h = tuner.observe(np.array([-0.1, -0.1]), h)
        assert (tuner.learning_rates < before).all()

    def test_rate_clamped_to_max(self):
        tuner = make_tuner(
            batch_size=1, initial_learning_rate=40.0, learning_rate_max=50.0
        )
        h = np.ones(2)
        for _ in range(10):
            h = tuner.observe(np.array([1e-3, 1e-3]), h)
        assert (tuner.learning_rates <= 50.0).all()

    def test_rate_clamped_to_min(self):
        tuner = make_tuner(batch_size=1, learning_rate_min=1e-6)
        h = np.ones(2)
        sign = 1.0
        for _ in range(100):
            h = tuner.observe(np.array([sign * 0.1, sign * 0.1]), h)
            sign = -sign
        assert (tuner.learning_rates >= 1e-6).all()


class TestConvergence:
    def test_converges_on_quadratic(self):
        """Minimise (h - 2)^2 per dimension through gradient feedback."""
        tuner = make_tuner(dimensions=1, batch_size=1, log_updates=False,
                           initial_learning_rate=0.5)
        h = np.array([8.0])
        target = 2.0
        for _ in range(300):
            gradient = 2.0 * (h - target)
            h = tuner.observe(gradient, h) or h
        assert h[0] == pytest.approx(target, abs=0.3)

    def test_converges_in_log_space(self):
        """Same quadratic, optimised through log-bandwidth updates."""
        tuner = make_tuner(dimensions=1, batch_size=1, log_updates=True,
                           initial_learning_rate=0.1)
        h = np.array([8.0])
        target = 2.0
        for _ in range(500):
            gradient = 2.0 * (h - target) * h  # chain rule for log h
            h = tuner.observe(gradient, h) or h
        assert h[0] == pytest.approx(target, abs=0.3)

    def test_mini_batch_averages_outliers(self):
        """One extreme gradient inside a batch is damped by averaging."""
        tuner = make_tuner(batch_size=10, initial_learning_rate=1.0)
        h = np.array([1.0, 1.0])
        gradients = [np.array([0.01, 0.01])] * 9 + [np.array([100.0, 100.0])]
        updated = None
        for g in gradients:
            updated = tuner.observe(g, h)
        # Averaged gradient ~10; RMS normalisation bounds the step size, and
        # the positivity safeguard caps it at h/2.
        assert updated is not None
        assert updated[0] >= 0.5


class TestValidation:
    def test_rejects_wrong_shape(self):
        tuner = make_tuner(dimensions=3)
        with pytest.raises(ValueError):
            tuner.observe(np.zeros(2), np.ones(3))

    def test_rejects_nan_gradient(self):
        tuner = make_tuner(dimensions=2)
        with pytest.raises(ValueError):
            tuner.observe(np.array([np.nan, 0.0]), np.ones(2))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            RMSpropTuner(0)


class TestTrustRegion:
    def test_max_log_step_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(max_log_step=0.0)

    def test_single_update_bounded_by_trust_region(self):
        """One log-space mini-batch update changes the bandwidth by at
        most exp(max_log_step) in either direction."""
        cfg = AdaptiveConfig(
            batch_size=1, log_updates=True, initial_learning_rate=50.0,
            max_log_step=0.7,
        )
        tuner = RMSpropTuner(2, cfg)
        h = np.array([1.0, 1.0])
        updated = tuner.observe(np.array([1e6, -1e6]), h)
        ratio = updated / h
        assert (ratio >= np.exp(-0.7) - 1e-12).all()
        assert (ratio <= np.exp(0.7) + 1e-12).all()

    def test_first_update_bias_corrected(self):
        """Without bias correction the first update would be inflated by
        1/sqrt(1 - alpha); with it, the first step is ~lambda * sign."""
        cfg = AdaptiveConfig(
            batch_size=1, log_updates=True, initial_learning_rate=0.1,
            smoothing=0.9, max_log_step=10.0,
        )
        tuner = RMSpropTuner(1, cfg)
        h = np.array([1.0])
        updated = tuner.observe(np.array([0.5]), h)
        # Expected log step ~ lambda = 0.1 (not 0.1 / sqrt(0.1) ~ 0.316).
        assert np.log(h / updated)[0] == pytest.approx(0.1, rel=0.01)
