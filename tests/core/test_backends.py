"""Execution backends: registry, equivalence and cache invalidation.

The correctness contract of :mod:`repro.core.backends` is strict:

* the cached backend must be *bitwise* identical to the uncached numpy
  backend — it evaluates exactly the same elementwise kernel math, only
  deduplicated — and must stay identical across bandwidth updates and
  in-place sample replacements (epoch keys + eager invalidation);
* the sharded backend must be invariant to the shard count and within
  the 1e-12 budget of the numpy backend (its only deviation is the
  partial-sum reduction order of ``selectivity_block``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KernelDensityEstimator,
    SelfTuningKDE,
    scott_bandwidth,
)
from repro.core.backends import (
    CachedBackend,
    ExecutionBackend,
    NumpyBackend,
    ShardedBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.faults import CircuitBreaker, RetryPolicy
from repro.geometry import Box, QueryBatch


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def sample(rng):
    return rng.normal(size=(400, 3))


@pytest.fixture
def batch(rng):
    # Deliberately reuse per-dimension bounds so the cache sees hits.
    pool = rng.uniform(-2.0, 0.0, size=(6, 3))
    choice = rng.integers(6, size=(50, 3))
    lows = np.take_along_axis(pool, choice, axis=0)
    widths = rng.uniform(0.5, 2.5, size=(6, 3))
    highs = lows + np.take_along_axis(widths, choice, axis=0)
    return QueryBatch(lows, highs)


def _make(sample, backend=None):
    return KernelDensityEstimator(
        sample, scott_bandwidth(sample), backend=backend
    )


# ----------------------------------------------------------------------
# Registry / resolution
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert {"numpy", "sharded", "cached"} <= set(names)

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("no-such-backend")

    def test_resolve_default_is_numpy(self):
        assert isinstance(resolve_backend(None), NumpyBackend)

    def test_resolve_by_name(self):
        assert isinstance(resolve_backend("cached"), CachedBackend)

    def test_resolve_instance_passthrough(self):
        backend = CachedBackend(capacity=17)
        assert resolve_backend(backend) is backend

    def test_bind_rejects_second_estimator(self, sample):
        backend = NumpyBackend()
        _make(sample, backend)
        with pytest.raises(ValueError, match="already bound"):
            _make(sample, backend)

    def test_estimator_backend_property_and_setter(self, sample, batch):
        kde = _make(sample)
        assert isinstance(kde.backend, NumpyBackend)
        before = kde.selectivity_batch(batch)
        kde.backend = "cached"
        assert isinstance(kde.backend, CachedBackend)
        np.testing.assert_array_equal(kde.selectivity_batch(batch), before)

    def test_model_forwards_backend(self, sample):
        model = SelfTuningKDE(sample, backend="cached")
        assert isinstance(model.backend, CachedBackend)


# ----------------------------------------------------------------------
# Cached backend: bitwise identity + invalidation
# ----------------------------------------------------------------------
class TestCachedBackend:
    def test_bitwise_identical_to_numpy(self, sample, batch):
        plain = _make(sample)
        cached = _make(sample, CachedBackend())
        np.testing.assert_array_equal(
            cached.selectivity_batch(batch), plain.selectivity_batch(batch)
        )
        np.testing.assert_array_equal(
            cached.contributions_batch(batch),
            plain.contributions_batch(batch),
        )
        np.testing.assert_array_equal(
            cached.dimension_masses_batch(batch),
            plain.dimension_masses_batch(batch),
        )
        np.testing.assert_array_equal(
            cached.selectivity_gradient_batch(batch),
            plain.selectivity_gradient_batch(batch),
        )

    def test_warm_pass_is_bitwise_identical_and_hits(self, sample, batch):
        cached = _make(sample, CachedBackend())
        first = cached.selectivity_batch(batch)
        second = cached.selectivity_batch(batch)
        np.testing.assert_array_equal(first, second)
        # Unique bounds are deduplicated within a pass, so the second
        # pass hits every column the first one missed: rate exactly 1/2.
        assert cached.backend.stats.cache_hits > 0
        assert cached.backend.stats.cache_hit_rate >= 0.5

    def test_bandwidth_update_invalidates(self, sample, batch):
        plain = _make(sample)
        cached = _make(sample, CachedBackend())
        cached.selectivity_batch(batch)  # fill the cache

        new_bandwidth = plain.bandwidth * 1.3
        plain.bandwidth = new_bandwidth
        cached.bandwidth = new_bandwidth

        assert cached.backend.stats.invalidations.get("bandwidth") == 1
        np.testing.assert_array_equal(
            cached.selectivity_batch(batch), plain.selectivity_batch(batch)
        )

    def test_replace_points_invalidates(self, rng, sample, batch):
        plain = _make(sample)
        cached = _make(sample, CachedBackend())
        cached.selectivity_batch(batch)  # fill the cache

        indices = np.array([0, 7, 311])
        rows = rng.normal(size=(3, 3))
        plain.replace_points(indices, rows)
        cached.replace_points(indices, rows)

        assert cached.backend.stats.invalidations.get("sample") == 1
        np.testing.assert_array_equal(
            cached.selectivity_batch(batch), plain.selectivity_batch(batch)
        )

    def test_epoch_counters_bump(self, rng, sample):
        kde = _make(sample)
        b_epoch, s_epoch = kde.bandwidth_epoch, kde.sample_epoch
        kde.bandwidth = kde.bandwidth * 1.1
        assert kde.bandwidth_epoch == b_epoch + 1
        assert kde.sample_epoch == s_epoch
        kde.replace_points(np.array([1]), rng.normal(size=(1, 3)))
        assert kde.sample_epoch == s_epoch + 1

    def test_many_epochs_interleaved(self, rng, sample, batch):
        """Fuzz: random interleaving of updates never desyncs the cache."""
        plain = _make(sample)
        cached = _make(sample, CachedBackend())
        for _ in range(5):
            action = rng.integers(3)
            if action == 0:
                bandwidth = plain.bandwidth * rng.uniform(0.8, 1.2)
                plain.bandwidth = bandwidth
                cached.bandwidth = bandwidth
            elif action == 1:
                indices = rng.choice(len(sample), size=4, replace=False)
                rows = rng.normal(size=(4, 3))
                plain.replace_points(indices, rows)
                cached.replace_points(indices, rows)
            np.testing.assert_array_equal(
                cached.selectivity_batch(batch),
                plain.selectivity_batch(batch),
            )

    def test_lru_eviction_bounds_size(self, sample, batch):
        backend = CachedBackend(capacity=8)
        kde = _make(sample, backend)
        kde.selectivity_batch(batch)
        assert len(backend.cache) <= 8
        assert backend.stats.cache_evictions > 0

    def test_warm_precomputes_the_serving_columns(self, sample, batch):
        backend = CachedBackend()
        kde = _make(sample, backend)
        assert backend.warm(batch.low, batch.high)
        plain = _make(sample)
        misses_after_warm = backend.cache.misses
        np.testing.assert_array_equal(
            kde.selectivity_batch(batch), plain.selectivity_batch(batch)
        )
        # Every column the batch needs was resolved during the warm.
        assert backend.cache.misses == misses_after_warm
        assert backend.cache.hits > 0
        assert not backend.warm(None, None)  # region-keyed: no bounds, no work

    def test_warmed_entries_of_a_superseded_epoch_are_never_served(
        self, sample, batch, monkeypatch
    ):
        """Regression: epoch-stamped keys, not eager clearing, are the guard.

        A warm that races a bandwidth update can leave entries stamped
        with the old epoch resident (model that by disabling the eager
        invalidation-clear).  Those entries must be orphaned — zero
        hits — never served into the new-epoch evaluation.
        """
        plain = _make(sample)
        backend = CachedBackend()
        cached = _make(sample, backend)
        assert backend.warm(batch.low, batch.high)
        resident = len(backend.cache)
        assert resident > 0
        monkeypatch.setattr(backend, "invalidate", lambda reason: None)
        new_bandwidth = plain.bandwidth * 1.3
        plain.bandwidth = new_bandwidth
        cached.bandwidth = new_bandwidth
        assert len(backend.cache) == resident  # stale entries still resident
        hits_before = backend.cache.hits
        np.testing.assert_array_equal(
            cached.selectivity_batch(batch), plain.selectivity_batch(batch)
        )
        assert backend.cache.hits == hits_before  # not one stale hit

    def test_stats_as_dict(self, sample, batch):
        kde = _make(sample, CachedBackend())
        kde.selectivity_batch(batch)
        stats = kde.backend.stats.as_dict()
        assert stats["queries_evaluated"] == len(batch)
        assert stats["cache_misses"] > 0


# ----------------------------------------------------------------------
# Sharded backend: shard-count invariance
# ----------------------------------------------------------------------
class TestShardedBackend:
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_selectivity_matches_numpy(self, sample, batch, shards):
        plain = _make(sample)
        kde = _make(sample, ShardedBackend(shards=shards))
        np.testing.assert_allclose(
            kde.selectivity_batch(batch),
            plain.selectivity_batch(batch),
            rtol=0,
            atol=1e-12,
        )
        kde.backend.close()

    @pytest.mark.parametrize("shards", [2, 7])
    def test_slabs_are_bitwise_identical(self, sample, batch, shards):
        """Concatenated per-shard slabs carry no reduction reordering."""
        plain = _make(sample)
        kde = _make(sample, ShardedBackend(shards=shards))
        np.testing.assert_array_equal(
            kde.contributions_batch(batch),
            plain.contributions_batch(batch),
        )
        np.testing.assert_array_equal(
            kde.dimension_masses_batch(batch),
            plain.dimension_masses_batch(batch),
        )
        kde.backend.close()

    def test_gradient_matches_numpy(self, sample, batch):
        plain = _make(sample)
        kde = _make(sample, ShardedBackend(shards=3))
        np.testing.assert_allclose(
            kde.selectivity_gradient_batch(batch),
            plain.selectivity_gradient_batch(batch),
            rtol=0,
            atol=1e-12,
        )
        kde.backend.close()

    def test_replace_points_reaches_workers(self, rng, sample, batch):
        """Sample mutations propagate into the shared-memory shards."""
        plain = _make(sample)
        kde = _make(sample, ShardedBackend(shards=2))
        kde.selectivity_batch(batch)  # spin up pool + shared memory

        indices = rng.choice(len(sample), size=10, replace=False)
        rows = rng.normal(size=(10, 3))
        plain.replace_points(indices, rows)
        kde.replace_points(indices, rows)

        np.testing.assert_allclose(
            kde.selectivity_batch(batch),
            plain.selectivity_batch(batch),
            rtol=0,
            atol=1e-12,
        )
        kde.backend.close()

    def test_pool_failure_detaches_dead_executor(self, sample, batch):
        """A pool-level failure must close the executor, not strand it.

        Regression: the inline fallback used to leave the broken pool
        attached; ``ensure()`` then reused it (the shm view still
        matched), so a half-open probe could never recover.
        """
        clock = [0.0]
        backend = ShardedBackend(
            shards=2,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(recovery_after=30.0, clock=lambda: clock[0]),
        )
        kde = _make(sample, backend)
        expected = kde.selectivity_batch(batch)

        pool = backend.executor._pool
        assert pool is not None
        for process in pool._processes.values():
            process.kill()
        with pytest.warns(RuntimeWarning, match="falling back to inline"):
            np.testing.assert_allclose(
                kde.selectivity_batch(batch), expected, rtol=0, atol=1e-12
            )
        # The dead pool is gone; once the breaker admits a probe, the
        # sharded path rebuilds and re-arms.
        assert backend.executor._pool is None
        assert backend.breaker.state == "open"
        clock[0] = 31.0
        np.testing.assert_allclose(
            kde.selectivity_batch(batch), expected, rtol=0, atol=1e-12
        )
        assert backend.executor._pool is not None
        assert backend.breaker.state == "closed"
        kde.backend.close()

    def test_close_then_reuse_respawns(self, sample, batch):
        kde = _make(sample, ShardedBackend(shards=2))
        expected = kde.selectivity_batch(batch)
        kde.backend.close()
        np.testing.assert_array_equal(
            kde.selectivity_batch(batch), expected
        )
        kde.backend.close()

    @settings(max_examples=6, deadline=None)
    @given(
        start=st.integers(min_value=1, max_value=4),
        intermediate=st.lists(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=3
        ),
    )
    def test_resize_round_trip_is_bit_identical(self, start, intermediate):
        """Autoscaling is purely a capacity action: any resize schedule
        that returns to the starting shard count reproduces the original
        results bit for bit (same partials, same reduction order)."""
        rng = np.random.default_rng(11)
        sample = rng.normal(size=(200, 2))
        low = rng.uniform(-2.0, 0.0, size=(12, 2))
        batch = QueryBatch(low, low + rng.uniform(0.5, 2.0, size=(12, 2)))
        kde = _make(sample, ShardedBackend(shards=start))
        try:
            baseline_sel = kde.selectivity_batch(batch)
            baseline_con = kde.contributions_batch(batch)
            plain = _make(sample)
            for shards in intermediate:
                kde.backend.resize(shards)
                # Intermediate sizes still serve, inside the 1e-12
                # reduction budget of the reference backend.
                np.testing.assert_allclose(
                    kde.selectivity_batch(batch),
                    plain.selectivity_batch(batch),
                    rtol=0,
                    atol=1e-12,
                )
            kde.backend.resize(start)
            np.testing.assert_array_equal(
                kde.selectivity_batch(batch), baseline_sel
            )
            np.testing.assert_array_equal(
                kde.contributions_batch(batch), baseline_con
            )
        finally:
            kde.backend.close()


# ----------------------------------------------------------------------
# selectivity_many dispatch (satellite 2)
# ----------------------------------------------------------------------
class TestSelectivityMany:
    def test_query_batch_dispatches_directly(self, sample, batch):
        kde = _make(sample)
        np.testing.assert_array_equal(
            kde.selectivity_many(batch), kde.selectivity_batch(batch)
        )

    def test_box_sequence(self, sample, batch):
        kde = _make(sample)
        boxes = [Box(lo, hi) for lo, hi in zip(batch.low, batch.high)]
        np.testing.assert_array_equal(
            kde.selectivity_many(boxes), kde.selectivity_batch(batch)
        )

    def test_empty_sequence(self, sample):
        kde = _make(sample)
        result = kde.selectivity_many([])
        assert result.shape == (0,)

    def test_dimension_mismatch_raises(self, sample, rng):
        kde = _make(sample)
        bad = QueryBatch(rng.normal(size=(4, 5)), rng.normal(size=(4, 5)) + 3)
        with pytest.raises(ValueError, match="dimensions"):
            kde.selectivity_many(bad)


class TestBaseProtocol:
    def test_unbound_backend_raises(self):
        backend = ExecutionBackend()
        with pytest.raises(RuntimeError, match="not bound"):
            backend.estimator
