"""Tests for the rule-based bandwidth selectors (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import (
    MIN_BANDWIDTH,
    sample_std,
    scott_bandwidth,
    silverman_bandwidth,
)


class TestSampleStd:
    def test_matches_numpy(self, small_sample):
        np.testing.assert_allclose(
            sample_std(small_sample), small_sample.std(axis=0), atol=1e-10
        )

    def test_constant_column_zero(self):
        sample = np.column_stack([np.ones(100), np.arange(100.0)])
        std = sample_std(sample)
        assert std[0] == pytest.approx(0.0, abs=1e-12)
        assert std[1] > 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sample_std(np.empty((0, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sample_std(np.zeros(10))

    def test_numerically_stable_large_offset(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(1000, 1))
        shifted = base + 1e6
        np.testing.assert_allclose(
            sample_std(shifted), base.std(axis=0), rtol=1e-3
        )

    def test_catastrophic_cancellation_regression(self):
        # The naive E[x^2] - E[x]^2 identity collapses this to zero in
        # float64: 1e8**2 = 1e16 leaves no mantissa room for the unit gap.
        std = sample_std(np.array([[1e8], [1e8 + 1]]))
        assert std[0] == pytest.approx(0.5, rel=1e-12)

    def test_large_offset_exact_small_set(self):
        # Shifted two-pass form is exact for exactly representable inputs.
        offsets = [0.0, 1e8, -1e8, 1e12]
        for offset in offsets:
            sample = np.array([[offset], [offset + 2.0], [offset + 4.0]])
            np.testing.assert_allclose(
                sample_std(sample), [np.sqrt(8.0 / 3.0)], rtol=1e-12
            )

    @given(
        st.floats(-1e10, 1e10, allow_nan=False),
        st.integers(2, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, offset, n):
        rng = np.random.default_rng(n)
        base = rng.normal(size=(n, 2))
        np.testing.assert_allclose(
            sample_std(base + offset),
            sample_std(base),
            rtol=1e-5,
            atol=1e-6,
        )


class TestScott:
    def test_formula(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(size=(400, 2)) * np.array([1.0, 3.0])
        h = scott_bandwidth(sample)
        expected = 400 ** (-1.0 / 6.0) * sample.std(axis=0)
        np.testing.assert_allclose(h, expected, rtol=1e-10)

    def test_wider_data_wider_bandwidth(self):
        rng = np.random.default_rng(1)
        narrow = rng.normal(size=(500, 3))
        wide = narrow * 10.0
        np.testing.assert_allclose(
            scott_bandwidth(wide), 10.0 * scott_bandwidth(narrow), rtol=1e-10
        )

    def test_larger_sample_smaller_bandwidth(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(10_000, 2))
        h_small = scott_bandwidth(data[:100])
        h_large = scott_bandwidth(data)
        assert (h_large < h_small).all()

    def test_positive_even_for_constant_dimension(self):
        sample = np.column_stack([np.ones(50), np.arange(50.0)])
        h = scott_bandwidth(sample)
        assert h[0] == MIN_BANDWIDTH
        assert h[1] > MIN_BANDWIDTH

    @given(st.integers(2, 500), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_always_positive(self, n, d):
        rng = np.random.default_rng(n * 7 + d)
        sample = rng.normal(size=(n, d))
        assert (scott_bandwidth(sample) > 0).all()


class TestSilverman:
    def test_close_to_scott(self):
        rng = np.random.default_rng(5)
        sample = rng.normal(size=(1000, 3))
        ratio = silverman_bandwidth(sample) / scott_bandwidth(sample)
        # (4/(d+2))^(1/(d+4)) for d=3 -> (4/5)^(1/7) ~ 0.9686
        np.testing.assert_allclose(ratio, (4.0 / 5.0) ** (1.0 / 7.0), rtol=1e-10)

    def test_positive(self):
        sample = np.column_stack([np.zeros(10), np.arange(10.0)])
        assert (silverman_bandwidth(sample) > 0).all()
