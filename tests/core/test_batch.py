"""Tests for the batched query-evaluation engine.

The batched paths (``QueryBatch``, ``selectivity_batch`` and friends, the
tuner's ``observe_batch``, ``SelfTuningKDE.feedback_batch``) promise
*numerical equivalence* with the per-query loops — the per-element
operations and their order are identical, only Python dispatch overhead
is batched away.  These tests pin that promise down to 1e-12 (and mostly
to bitwise equality).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KernelDensityEstimator, SelfTuningKDE, scott_bandwidth
from repro.core.adaptive import RMSpropTuner
from repro.core.config import AdaptiveConfig, SelfTuningConfig
from repro.core.model import ArrayRowSource
from repro.core.variable import VariableKernelDensityEstimator
from repro.geometry import Box, QueryBatch

from ..conftest import random_data_centered_queries


# ----------------------------------------------------------------------
# QueryBatch: construction and container protocol
# ----------------------------------------------------------------------
class TestQueryBatch:
    def test_from_boxes_roundtrip(self):
        boxes = [Box([0.0, 0.0], [1.0, 2.0]), Box([-1.0, 0.5], [0.0, 0.5])]
        batch = QueryBatch.from_boxes(boxes)
        assert len(batch) == 2
        assert batch.dimensions == 2
        assert list(batch) == boxes
        assert batch.box(1) == boxes[1]
        assert batch[0] == boxes[0]

    def test_slice_returns_subbatch(self):
        batch = QueryBatch(np.zeros((4, 3)), np.ones((4, 3)))
        sub = batch[1:3]
        assert isinstance(sub, QueryBatch)
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.widths(), np.ones((2, 3)))

    def test_coerce_accepts_all_forms(self):
        box = Box([0.0], [1.0])
        single = QueryBatch.coerce(box)
        assert len(single) == 1 and single.box(0) == box
        batch = QueryBatch.coerce([box, box])
        assert len(batch) == 2
        assert QueryBatch.coerce(batch) is batch

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBatch.from_boxes([])
        with pytest.raises(ValueError):
            QueryBatch(np.zeros((0, 2)), np.zeros((0, 2)))
        with pytest.raises(ValueError):
            QueryBatch(np.zeros((2, 0)), np.zeros((2, 0)))
        with pytest.raises(ValueError):
            QueryBatch(np.ones((2, 2)), np.zeros((2, 2)))  # high < low
        with pytest.raises(ValueError):
            QueryBatch(np.full((1, 2), np.nan), np.ones((1, 2)))
        with pytest.raises(ValueError):
            QueryBatch.from_boxes([Box([0.0], [1.0]), Box([0.0, 0.0], [1.0, 1.0])])

    def test_degenerate_queries_allowed(self):
        batch = QueryBatch(np.zeros((2, 2)), np.zeros((2, 2)))
        assert np.all(batch.widths() == 0.0)

    def test_equality_and_hash(self):
        a = QueryBatch(np.zeros((2, 2)), np.ones((2, 2)))
        b = QueryBatch(np.zeros((2, 2)), np.ones((2, 2)))
        c = QueryBatch(np.zeros((2, 2)), np.full((2, 2), 2.0))
        assert a == b and hash(a) == hash(b)
        assert a != c


# ----------------------------------------------------------------------
# Batched estimator paths vs the per-query loops
# ----------------------------------------------------------------------
def _make_queries(data, rng, count=12):
    queries = random_data_centered_queries(data, count - 2, rng)
    # Include degenerate (zero-width) and far-out empty queries.
    point = data[0]
    queries.append(Box(point, point))
    queries.append(Box(point + 100.0, point + 101.0))
    return queries


class TestBatchEquivalence:
    @pytest.mark.parametrize("kernel", ["gaussian", "epanechnikov"])
    def test_selectivity_batch_matches_loop(self, small_sample, rng, kernel):
        kde = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample), kernel
        )
        queries = _make_queries(small_sample, rng)
        batched = kde.selectivity_batch(queries)
        looped = np.array([kde.selectivity(q) for q in queries])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("kernel", ["gaussian", "epanechnikov"])
    def test_gradient_batch_matches_loop(self, small_sample, rng, kernel):
        kde = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample), kernel
        )
        queries = _make_queries(small_sample, rng)
        batched = kde.selectivity_gradient_batch(queries)
        looped = np.stack([kde.selectivity_gradient(q) for q in queries])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)

    def test_gradient_batch_with_precomputed_masses(self, small_sample, rng):
        kde = KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))
        queries = _make_queries(small_sample, rng)
        masses = kde.dimension_masses_batch(queries)
        np.testing.assert_array_equal(
            kde.selectivity_gradient_batch(queries, masses),
            kde.selectivity_gradient_batch(queries),
        )

    def test_contributions_and_masses_match_loop(self, small_sample, rng):
        kde = KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))
        queries = _make_queries(small_sample, rng)
        batched_masses = kde.dimension_masses_batch(queries)
        batched_contrib = kde.contributions_batch(queries)
        for index, query in enumerate(queries):
            np.testing.assert_allclose(
                batched_masses[index], kde.dimension_masses(query), atol=1e-15
            )
            np.testing.assert_allclose(
                batched_contrib[index], kde.contributions(query), atol=1e-13
            )

    def test_chunked_path_matches_unchunked(self, small_sample, rng, monkeypatch):
        # Force a tiny chunk so the loop boundary logic is exercised.
        from repro.core import estimator as estimator_module

        kde = KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))
        queries = _make_queries(small_sample, rng, count=9)
        full = kde.selectivity_batch(queries)
        monkeypatch.setattr(estimator_module, "_BATCH_ELEMENT_BUDGET", 1)
        assert kde._batch_chunk() == 1
        np.testing.assert_array_equal(kde.selectivity_batch(queries), full)

    def test_selectivity_many_empty(self, small_sample):
        kde = KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))
        assert kde.selectivity_many([]).shape == (0,)

    def test_dimension_mismatch_raises(self, small_sample):
        kde = KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))
        with pytest.raises(ValueError):
            kde.selectivity_batch([Box([0.0], [1.0])])

    @given(st.integers(0, 2**32 - 1), st.integers(1, 5), st.integers(1, 24))
    @settings(max_examples=25, deadline=None)
    def test_property_batch_equals_loop(self, seed, d, q):
        rng = np.random.default_rng(seed)
        sample = rng.normal(size=(64, d))
        kde = KernelDensityEstimator(sample, scott_bandwidth(sample))
        centers = rng.normal(size=(q, d))
        widths = rng.uniform(0.0, 3.0, size=(q, d))
        batch = QueryBatch(centers - widths / 2, centers + widths / 2)
        np.testing.assert_allclose(
            kde.selectivity_batch(batch),
            np.array([kde.selectivity(b) for b in batch]),
            rtol=0,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            kde.selectivity_gradient_batch(batch),
            np.stack([kde.selectivity_gradient(b) for b in batch]),
            rtol=0,
            atol=1e-12,
        )


class TestVariableKDEFallback:
    """Subclasses overriding the per-query methods fall back correctly."""

    def test_fast_path_detection(self, small_sample):
        plain = KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))
        variable = VariableKernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        assert plain._uses_batch_fast_path()
        assert not variable._uses_batch_fast_path()

    def test_variable_batch_matches_loop(self, small_sample, rng):
        kde = VariableKernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        queries = _make_queries(small_sample, rng, count=6)
        np.testing.assert_array_equal(
            kde.selectivity_batch(queries),
            np.array([kde.selectivity(q) for q in queries]),
        )
        np.testing.assert_array_equal(
            kde.selectivity_gradient_batch(queries),
            np.stack([kde.selectivity_gradient(q) for q in queries]),
        )
        np.testing.assert_array_equal(
            kde.contributions_batch(queries),
            np.stack([kde.contributions(q) for q in queries]),
        )


# ----------------------------------------------------------------------
# Batched tuner accumulation
# ----------------------------------------------------------------------
class TestObserveBatch:
    def test_matches_observe_loop(self):
        rng = np.random.default_rng(7)
        gradients = rng.normal(size=(37, 3))
        bandwidth = np.array([0.5, 1.0, 2.0])
        looped = RMSpropTuner(3, AdaptiveConfig(batch_size=10))
        batched = RMSpropTuner(3, AdaptiveConfig(batch_size=10))
        current = bandwidth.copy()
        for gradient in gradients:
            updated = looped.observe(gradient, current)
            if updated is not None:
                current = updated
        result = batched.observe_batch(gradients, bandwidth)
        np.testing.assert_array_equal(result, current)
        assert looped.pending == batched.pending
        assert looped.updates_applied == batched.updates_applied
        np.testing.assert_array_equal(
            looped.learning_rates, batched.learning_rates
        )

    def test_no_boundary_returns_none(self):
        tuner = RMSpropTuner(2, AdaptiveConfig(batch_size=10))
        assert tuner.observe_batch(np.ones((4, 2)), np.ones(2)) is None
        assert tuner.pending == 4
        assert tuner.batch_room == 6

    def test_resumes_partial_batch(self):
        tuner = RMSpropTuner(2, AdaptiveConfig(batch_size=5))
        tuner.observe(np.ones(2), np.ones(2))
        tuner.observe(np.ones(2), np.ones(2))
        assert tuner.batch_room == 3
        updated = tuner.observe_batch(np.ones((3, 2)), np.ones(2))
        assert updated is not None
        assert tuner.pending == 0

    def test_rejects_bad_shapes(self):
        tuner = RMSpropTuner(2)
        with pytest.raises(ValueError):
            tuner.observe_batch(np.ones((3, 4)), np.ones(2))
        with pytest.raises(ValueError):
            tuner.observe_batch(np.full((2, 2), np.nan), np.ones(2))


# ----------------------------------------------------------------------
# SelfTuningKDE batched feedback vs the estimate/feedback loop
# ----------------------------------------------------------------------
def _paired_models(sample, data, config, seed=11):
    kwargs = dict(
        config=config,
        row_source=ArrayRowSource(data),
        population_size=len(data),
        seed=seed,
    )
    return SelfTuningKDE(sample, **kwargs), SelfTuningKDE(sample, **kwargs)


def _workload(data, rng, count):
    queries = random_data_centered_queries(data, count, rng)
    truths = [
        float(np.all((data >= q.low) & (data <= q.high), axis=1).mean())
        for q in queries
    ]
    return queries, truths


class TestFeedbackBatch:
    @pytest.mark.parametrize("log_updates", [True, False])
    def test_matches_loop(self, gaussian_data, small_sample, rng, log_updates):
        config = SelfTuningConfig(
            adaptive=AdaptiveConfig(batch_size=7, log_updates=log_updates)
        )
        looped, batched = _paired_models(small_sample, gaussian_data, config)
        queries, truths = _workload(gaussian_data, rng, 40)
        for query, truth in zip(queries, truths):
            looped.estimate(query)
            looped.feedback(query, truth)
        batched.feedback_batch(queries, truths)
        np.testing.assert_allclose(
            batched.bandwidth, looped.bandwidth, rtol=0, atol=1e-12
        )
        np.testing.assert_array_equal(
            batched.estimator.sample, looped.estimator.sample
        )
        assert batched.feedback_count == looped.feedback_count
        assert batched.points_replaced == looped.points_replaced
        assert batched.tuner.updates_applied == looped.tuner.updates_applied

    def test_matches_loop_with_replacements(self, rng):
        # Queries covering sample points but reported empty trigger the
        # Appendix E shortcut, exercising the segment-truncation path.
        data = rng.uniform(-5, 5, size=(5000, 2))
        sample = data[rng.choice(len(data), size=128, replace=False)]
        config = SelfTuningConfig(adaptive=AdaptiveConfig(batch_size=3))

        def paired():
            kwargs = dict(
                config=config,
                row_source=ArrayRowSource(data),
                population_size=len(data),
                bandwidth=np.array([0.2, 0.2]),
                seed=5,
            )
            return SelfTuningKDE(sample, **kwargs), SelfTuningKDE(
                sample, **kwargs
            )

        looped, batched = paired()
        queries = random_data_centered_queries(data, 20, rng)
        truths = [
            float(np.all((data >= q.low) & (data <= q.high), axis=1).mean())
            for q in queries
        ]
        # "Deleted cluster": regions dense with sample points whose true
        # selectivity is reported as zero — the shortcut flags the certified
        # interior points for replacement.
        for k in range(6):
            center = sample[5 * k]
            queries.insert(3 * k, Box(center - 1.0, center + 1.0))
            truths.insert(3 * k, 0.0)
        for query, truth in zip(queries, truths):
            looped.estimate(query)
            looped.feedback(query, truth)
        batched.feedback_batch(queries, truths)
        assert batched.points_replaced == looped.points_replaced
        assert batched.points_replaced > 0
        np.testing.assert_array_equal(
            batched.estimator.sample, looped.estimator.sample
        )
        np.testing.assert_allclose(
            batched.bandwidth, looped.bandwidth, rtol=0, atol=1e-12
        )

    def test_matches_loop_non_adaptive(self, gaussian_data, small_sample, rng):
        config = SelfTuningConfig(adapt_bandwidth=False)
        looped, batched = _paired_models(small_sample, gaussian_data, config)
        queries, truths = _workload(gaussian_data, rng, 15)
        for query, truth in zip(queries, truths):
            looped.estimate(query)
            looped.feedback(query, truth)
        batched.feedback_batch(queries, truths)
        np.testing.assert_array_equal(
            batched.estimator.sample, looped.estimator.sample
        )
        np.testing.assert_array_equal(batched.bandwidth, looped.bandwidth)

    def test_estimate_batch_matches_estimate(self, small_sample, rng):
        model = SelfTuningKDE(small_sample)
        queries = _make_queries(small_sample, rng, count=8)
        np.testing.assert_allclose(
            model.estimate_batch(queries),
            np.array([model.estimate(q) for q in queries]),
            rtol=0,
            atol=1e-12,
        )

    def test_validation(self, small_sample):
        model = SelfTuningKDE(small_sample)
        queries = [Box(np.zeros(3), np.ones(3))]
        with pytest.raises(ValueError):
            model.feedback_batch(queries, [0.5, 0.5])  # length mismatch
        with pytest.raises(ValueError):
            model.feedback_batch(queries, [1.5])  # out of [0, 1]
        with pytest.raises(ValueError):
            model.feedback_batch([Box([0.0], [1.0])], [0.5])  # wrong d
