"""Tests for the ordered-discrete kernel and mixed-data estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.categorical import (
    OrderedDiscreteKernel,
    encode_categories,
)
from repro.core.estimator import KernelDensityEstimator
from repro.core.gradient import QueryFeedback
from repro.core.kernels import get_kernel
from repro.core.optimize import BandwidthOptimizer


@pytest.fixture
def kernel():
    return OrderedDiscreteKernel()


class TestKernelBasics:
    def test_registered(self):
        assert isinstance(
            get_kernel("ordered_discrete"), OrderedDiscreteKernel
        )

    def test_whole_line_mass_one(self, kernel):
        points = np.array([0.0, 3.0, -7.0])
        mass = kernel.interval_mass(-1e9, 1e9, points, 0.5)
        np.testing.assert_allclose(mass, 1.0, atol=1e-12)

    def test_single_integer_interval(self, kernel):
        # [2, 2] contains one integer; for a centre at 2 the mass is the
        # self-weight 1 - lambda.
        h = 0.5
        lam = h / (1 + h)
        mass = kernel.interval_mass(2.0, 2.0, np.array([2.0]), h)
        assert mass[0] == pytest.approx(1 - lam)

    def test_neighbor_mass(self, kernel):
        h = 0.5
        lam = h / (1 + h)
        mass = kernel.interval_mass(3.0, 3.0, np.array([2.0]), h)
        assert mass[0] == pytest.approx(0.5 * (1 - lam) * lam)

    def test_matches_direct_summation(self, kernel):
        """Closed forms agree with the brute-force kernel sum."""
        h = 0.8
        lam = h / (1 + h)

        def k_direct(v, t):
            return (1 - lam) if v == t else 0.5 * (1 - lam) * lam ** abs(v - t)

        points = np.array([-3.0, 0.0, 2.0, 5.0, 11.0])
        low, high = -1.0, 4.0
        expected = [
            sum(k_direct(v, t) for v in range(-1, 5)) for t in points
        ]
        mass = kernel.interval_mass(low, high, points, h)
        np.testing.assert_allclose(mass, expected, atol=1e-12)

    def test_empty_interval(self, kernel):
        mass = kernel.interval_mass(2.4, 2.6, np.array([2.0]), 0.5)
        assert mass[0] == 0.0

    def test_non_integer_bounds_rounded_inward(self, kernel):
        full = kernel.interval_mass(1.0, 3.0, np.array([2.0]), 0.5)
        padded = kernel.interval_mass(0.6, 3.4, np.array([2.0]), 0.5)
        np.testing.assert_allclose(full, padded)

    def test_counting_limit(self, kernel):
        """h -> 0 degrades to exact counting (Section 8's observation)."""
        points = np.array([1.0, 2.0, 3.0, 7.0])
        mass = kernel.interval_mass(2.0, 3.0, points, 1e-12)
        np.testing.assert_allclose(mass, [0.0, 1.0, 1.0, 0.0], atol=1e-9)

    def test_grad_matches_finite_difference(self, kernel):
        points = np.array([-2.0, 0.0, 1.0, 3.0, 8.0])
        h = 0.6
        eps = 1e-6
        grad = kernel.interval_mass_grad(0.0, 2.0, points, h)
        fd = (
            kernel.interval_mass(0.0, 2.0, points, h + eps)
            - kernel.interval_mass(0.0, 2.0, points, h - eps)
        ) / (2 * eps)
        np.testing.assert_allclose(grad, fd, atol=1e-6)

    def test_no_continuous_density(self, kernel):
        with pytest.raises(NotImplementedError):
            kernel.pdf(np.array([0.0]))
        with pytest.raises(NotImplementedError):
            kernel.cdf(np.array([0.0]))

    # The kernel is stateless, so these property tests construct their
    # own instance (hypothesis forbids function-scoped fixtures in @given).
    @given(
        st.integers(-5, 5),
        st.integers(0, 8),
        st.floats(0.01, 5.0),
        st.integers(-10, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_mass_in_unit_interval(self, start, width, h, center):
        mass = OrderedDiscreteKernel().interval_mass(
            float(start), float(start + width), np.array([float(center)]), h
        )
        assert 0.0 <= mass[0] <= 1.0

    @given(st.floats(0.05, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_mass_additive(self, h):
        kernel = OrderedDiscreteKernel()
        points = np.arange(-3.0, 4.0)
        whole = kernel.interval_mass(-2.0, 5.0, points, h)
        parts = kernel.interval_mass(-2.0, 1.0, points, h) + kernel.interval_mass(
            2.0, 5.0, points, h
        )
        np.testing.assert_allclose(whole, parts, atol=1e-12)


class TestMixedEstimator:
    @pytest.fixture
    def mixed_data(self, rng):
        """Continuous value correlated with an integer category 0..4."""
        category = rng.integers(0, 5, size=20_000).astype(np.float64)
        value = category * 2.0 + rng.normal(scale=0.3, size=20_000)
        return np.column_stack([value, category])

    def test_mixed_kernels_estimate(self, mixed_data, rng):
        sample = mixed_data[rng.choice(len(mixed_data), 512, replace=False)]
        est = KernelDensityEstimator(
            sample,
            [0.3, 0.2],
            kernel=["gaussian", "ordered_discrete"],
        )
        query = Box([3.0, 2.0], [5.0, 2.0])  # value in [3,5] AND cat == 2
        truth = float(query.contains_points(mixed_data).mean())
        assert est.selectivity(query) == pytest.approx(truth, abs=0.05)

    def test_kernel_accessors(self, mixed_data):
        est = KernelDensityEstimator(
            mixed_data[:100], [0.3, 0.2],
            kernel=["gaussian", "ordered_discrete"],
        )
        assert est.kernel_for(0).name == "gaussian"
        assert est.kernel_for(1).name == "ordered_discrete"
        with pytest.raises(ValueError):
            est.kernel  # mixed kernels have no single shared kernel

    def test_kernel_count_mismatch(self, mixed_data):
        with pytest.raises(ValueError):
            KernelDensityEstimator(
                mixed_data[:100], [0.3, 0.2], kernel=["gaussian"]
            )

    def test_gradient_matches_fd_mixed(self, mixed_data, rng):
        sample = mixed_data[:256]
        est = KernelDensityEstimator(
            sample, [0.4, 0.5], kernel=["gaussian", "ordered_discrete"]
        )
        query = Box([1.0, 1.0], [5.0, 3.0])
        grad = est.selectivity_gradient(query)
        h0 = est.bandwidth
        eps = 1e-6
        for i in range(2):
            hp, hm = h0.copy(), h0.copy()
            hp[i] += eps
            hm[i] -= eps
            est.bandwidth = hp
            up = est.selectivity(query)
            est.bandwidth = hm
            down = est.selectivity(query)
            est.bandwidth = h0
            assert grad[i] == pytest.approx((up - down) / (2 * eps), rel=1e-4,
                                            abs=1e-8)

    def test_optimizer_shrinks_discrete_bandwidth(self, mixed_data, rng):
        """The paper's Section 8 claim: optimisation observes that a
        discrete attribute does not profit from smoothing and drives its
        bandwidth towards the counting regime."""
        sample = mixed_data[rng.choice(len(mixed_data), 512, replace=False)]
        workload = []
        for _ in range(60):
            cat = float(rng.integers(0, 5))
            lo = cat * 2.0 - 1.0
            box = Box([lo, cat], [lo + 2.0, cat])
            workload.append(
                QueryFeedback(box, float(box.contains_points(mixed_data).mean()))
            )
        optimizer = BandwidthOptimizer(starts=4, seed=0)
        result = optimizer.optimize(
            sample,
            workload,
            kernel=["gaussian", "ordered_discrete"],
            initial_bandwidth=np.array([0.5, 1.0]),
        )
        # lambda = h/(1+h): h well below 1 means most mass on the exact
        # category value.
        assert result.bandwidth[1] < 0.5
        assert result.loss < result.initial_loss


class TestEncodeCategories:
    def test_roundtrip(self):
        values = np.array(["red", "blue", "red", "green"])
        codes, categories = encode_categories(values)
        assert codes.dtype == np.float64
        np.testing.assert_array_equal(categories[codes.astype(int)], values)

    def test_numeric_input(self):
        codes, categories = encode_categories(np.array([10, 20, 10]))
        np.testing.assert_array_equal(codes, [0.0, 1.0, 0.0])
        np.testing.assert_array_equal(categories, [10, 20])
