"""Chunk-budget policy: override precedence and result invariance."""

import numpy as np
import pytest

from repro.core import (
    KernelDensityEstimator,
    get_chunk_budget,
    scott_bandwidth,
    set_chunk_budget,
)
from repro.core import chunking
from repro.geometry import QueryBatch


@pytest.fixture(autouse=True)
def _restore_budget():
    yield
    set_chunk_budget(None)


class TestPolicy:
    def test_default_within_clamp(self):
        budget = chunking.default_chunk_budget()
        assert chunking._MIN_BUDGET <= budget <= chunking._MAX_BUDGET

    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv(chunking.ENV_VAR, "999")
        set_chunk_budget(123)
        assert get_chunk_budget() == 123

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(chunking.ENV_VAR, "4096")
        assert get_chunk_budget() == 4096

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(chunking.ENV_VAR, "not-a-number")
        with pytest.raises(ValueError, match="positive integer"):
            get_chunk_budget()

    def test_env_nonpositive_raises(self, monkeypatch):
        monkeypatch.setenv(chunking.ENV_VAR, "-5")
        with pytest.raises(ValueError, match="positive"):
            get_chunk_budget()

    def test_set_none_restores_default(self, monkeypatch):
        monkeypatch.delenv(chunking.ENV_VAR, raising=False)
        set_chunk_budget(17)
        set_chunk_budget(None)
        assert get_chunk_budget() == chunking.default_chunk_budget()

    def test_set_nonpositive_raises(self):
        with pytest.raises(ValueError, match="positive"):
            set_chunk_budget(0)

    def test_density_budget_scales(self):
        set_chunk_budget(1000)
        assert chunking.get_density_chunk_budget() == 32_000

    def test_l2_detection_type(self):
        l2 = chunking.detect_l2_cache_bytes()
        assert l2 is None or (isinstance(l2, int) and l2 > 0)


class TestInvariance:
    """Chunk size is a performance knob: results must be identical."""

    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(3)
        sample = rng.normal(size=(200, 3))
        kde = KernelDensityEstimator(sample, scott_bandwidth(sample))
        lows = rng.uniform(-2, 0, size=(40, 3))
        batch = QueryBatch(lows, lows + rng.uniform(0.5, 2, size=(40, 3)))
        return kde, batch, rng.normal(size=(30, 3))

    @pytest.mark.parametrize("budget", [1, 7, 10_000])
    def test_selectivity_batch_invariant(self, setup, budget):
        kde, batch, _ = setup
        expected = kde.selectivity_batch(batch)
        set_chunk_budget(budget)
        np.testing.assert_array_equal(kde.selectivity_batch(batch), expected)

    @pytest.mark.parametrize("budget", [1, 7])
    def test_gradient_batch_invariant(self, setup, budget):
        kde, batch, _ = setup
        expected = kde.selectivity_gradient_batch(batch)
        set_chunk_budget(budget)
        np.testing.assert_array_equal(
            kde.selectivity_gradient_batch(batch), expected
        )

    @pytest.mark.parametrize("budget", [1, 7])
    def test_density_invariant(self, setup, budget):
        kde, _, points = setup
        expected = kde.density(points)
        set_chunk_budget(budget)
        np.testing.assert_array_equal(kde.density(points), expected)

    def test_legacy_module_constant_still_honoured(self, setup):
        """tests monkeypatch ``_BATCH_ELEMENT_BUDGET``; it must keep
        overriding the policy when set (backwards compatibility)."""
        from repro.core import estimator as estimator_module

        kde, batch, _ = setup
        expected = kde.selectivity_batch(batch)
        old = estimator_module._BATCH_ELEMENT_BUDGET
        try:
            estimator_module._BATCH_ELEMENT_BUDGET = 1
            np.testing.assert_array_equal(
                kde.selectivity_batch(batch), expected
            )
            assert kde._batch_chunk() == 1
        finally:
            estimator_module._BATCH_ELEMENT_BUDGET = old
