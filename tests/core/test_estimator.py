"""Tests for the KDE range-selectivity estimator (Eqs. 1, 2, 13, 17)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator

from ..conftest import true_selectivity


@pytest.fixture
def estimator(small_sample):
    return KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))


class TestConstruction:
    def test_rejects_1d_sample(self):
        with pytest.raises(ValueError):
            KernelDensityEstimator(np.zeros(5), [1.0])

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            KernelDensityEstimator(np.empty((0, 2)), [1.0, 1.0])

    def test_rejects_non_positive_bandwidth(self, small_sample):
        with pytest.raises(ValueError):
            KernelDensityEstimator(small_sample, [1.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            KernelDensityEstimator(small_sample, [1.0, -1.0, 1.0])

    def test_rejects_nan_bandwidth(self, small_sample):
        with pytest.raises(ValueError):
            KernelDensityEstimator(small_sample, [1.0, np.nan, 1.0])

    def test_rejects_wrong_bandwidth_shape(self, small_sample):
        with pytest.raises(ValueError):
            KernelDensityEstimator(small_sample, [1.0, 1.0])

    def test_scalar_bandwidth_broadcasts(self, small_sample):
        est = KernelDensityEstimator(small_sample, 0.5)
        np.testing.assert_array_equal(est.bandwidth, [0.5, 0.5, 0.5])

    def test_sample_is_copied(self, small_sample):
        est = KernelDensityEstimator(small_sample, 1.0)
        small_sample[0, 0] = 999.0
        assert est.sample[0, 0] != 999.0

    def test_sample_view_read_only(self, estimator):
        with pytest.raises(ValueError):
            estimator.sample[0, 0] = 1.0


class TestEstimation:
    def test_estimate_in_unit_interval(self, estimator, rng):
        for _ in range(20):
            center = rng.normal(size=3)
            widths = rng.uniform(0.1, 3.0, size=3)
            box = Box(center - widths, center + widths)
            assert 0.0 <= estimator.selectivity(box) <= 1.0

    def test_whole_space_estimates_one(self, estimator):
        box = Box([-1e8] * 3, [1e8] * 3)
        assert estimator.selectivity(box) == pytest.approx(1.0, abs=1e-9)

    def test_empty_far_region_estimates_zero(self, estimator):
        box = Box([100.0] * 3, [101.0] * 3)
        assert estimator.selectivity(box) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_region(self, estimator):
        small = Box([-0.5] * 3, [0.5] * 3)
        large = Box([-1.5] * 3, [1.5] * 3)
        assert estimator.selectivity(large) >= estimator.selectivity(small)

    def test_contributions_mean_is_estimate(self, estimator):
        box = Box([-1.0] * 3, [1.0] * 3)
        contributions = estimator.contributions(box)
        assert contributions.shape == (estimator.sample_size,)
        assert estimator.selectivity(box) == pytest.approx(
            float(contributions.mean())
        )

    def test_dimension_masses_products(self, estimator):
        box = Box([-1.0, -0.5, 0.0], [1.0, 0.5, 2.0])
        masses = estimator.dimension_masses(box)
        np.testing.assert_allclose(
            np.prod(masses, axis=1), estimator.contributions(box), atol=1e-14
        )

    def test_close_to_true_selectivity(self, gaussian_data, rng):
        indices = rng.choice(gaussian_data.shape[0], size=2048, replace=False)
        sample = gaussian_data[indices]
        est = KernelDensityEstimator(sample, scott_bandwidth(sample))
        box = Box([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0])
        truth = true_selectivity(gaussian_data, box)
        assert est.selectivity(box) == pytest.approx(truth, abs=0.05)

    def test_selectivity_many(self, estimator):
        boxes = [Box([-1.0] * 3, [1.0] * 3), Box([0.0] * 3, [2.0] * 3)]
        results = estimator.selectivity_many(boxes)
        assert results.shape == (2,)
        assert results[0] == pytest.approx(estimator.selectivity(boxes[0]))

    def test_dimension_mismatch_raises(self, estimator):
        with pytest.raises(ValueError):
            estimator.selectivity(Box([0.0], [1.0]))

    def test_epanechnikov_kernel(self, small_sample):
        est = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample), kernel="epanechnikov"
        )
        box = Box([-1.0] * 3, [1.0] * 3)
        assert 0.0 < est.selectivity(box) < 1.0
        everything = Box([-1e6] * 3, [1e6] * 3)
        assert est.selectivity(everything) == pytest.approx(1.0, abs=1e-12)

    def test_single_point_sample(self):
        est = KernelDensityEstimator(np.array([[0.0, 0.0]]), [1.0, 1.0])
        box = Box([-10.0, -10.0], [10.0, 10.0])
        assert est.selectivity(box) == pytest.approx(1.0, abs=1e-9)


class TestDensity:
    def test_density_integrates_via_monte_carlo(self, estimator, rng):
        # MC integral of the density over a big box should approximate the
        # selectivity estimate for that box.
        box = Box([-4.0] * 3, [4.0] * 3)
        points = box.sample_uniform(20_000, rng)
        mc = float(estimator.density(points).mean()) * box.volume()
        direct = estimator.selectivity(box)
        assert mc == pytest.approx(direct, rel=0.1)

    def test_density_non_negative(self, estimator, rng):
        points = rng.normal(size=(100, 3)) * 3
        assert (estimator.density(points) >= 0.0).all()

    def test_density_wrong_dims(self, estimator):
        with pytest.raises(ValueError):
            estimator.density(np.zeros((4, 2)))


class TestGradient:
    @pytest.mark.parametrize("kernel", ["gaussian", "epanechnikov"])
    def test_matches_finite_differences(self, small_sample, kernel):
        est = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample) * 1.3, kernel=kernel
        )
        box = Box([-1.0, -0.5, 0.0], [1.0, 1.5, 2.0])
        grad = est.selectivity_gradient(box)
        h0 = est.bandwidth
        eps = 1e-6
        for i in range(3):
            hp, hm = h0.copy(), h0.copy()
            hp[i] += eps
            hm[i] -= eps
            est.bandwidth = hp
            up = est.selectivity(box)
            est.bandwidth = hm
            down = est.selectivity(box)
            est.bandwidth = h0
            fd = (up - down) / (2 * eps)
            assert grad[i] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_gradient_with_precomputed_masses(self, estimator):
        box = Box([-1.0] * 3, [1.0] * 3)
        masses = estimator.dimension_masses(box)
        np.testing.assert_allclose(
            estimator.selectivity_gradient(box, masses),
            estimator.selectivity_gradient(box),
            atol=1e-14,
        )

    def test_gradient_zero_for_whole_space(self, estimator):
        # The estimate is exactly 1 regardless of bandwidth, so the
        # gradient must vanish.
        box = Box([-1e9] * 3, [1e9] * 3)
        np.testing.assert_allclose(
            estimator.selectivity_gradient(box), 0.0, atol=1e-12
        )

    @given(st.floats(0.2, 3.0), st.floats(-2.0, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_gradient_finite(self, scale, offset):
        rng = np.random.default_rng(7)
        sample = rng.normal(size=(64, 2))
        est = KernelDensityEstimator(sample, [scale, scale])
        box = Box([offset - 0.5, offset - 0.5], [offset + 0.5, offset + 0.5])
        grad = est.selectivity_gradient(box)
        assert np.all(np.isfinite(grad))


class TestReplacePoints:
    def test_replace(self, estimator):
        rows = np.array([[9.0, 9.0, 9.0], [8.0, 8.0, 8.0]])
        estimator.replace_points(np.array([0, 5]), rows)
        np.testing.assert_array_equal(estimator.sample[0], rows[0])
        np.testing.assert_array_equal(estimator.sample[5], rows[1])

    def test_replace_changes_estimate(self, estimator):
        box = Box([7.0] * 3, [10.0] * 3)
        before = estimator.selectivity(box)
        rows = np.full((10, 3), 8.5)
        estimator.replace_points(np.arange(10), rows)
        assert estimator.selectivity(box) > before

    def test_replace_shape_mismatch(self, estimator):
        with pytest.raises(ValueError):
            estimator.replace_points(np.array([0]), np.zeros((2, 3)))

    def test_replace_index_out_of_range(self, estimator):
        with pytest.raises(IndexError):
            estimator.replace_points(
                np.array([estimator.sample_size]), np.zeros((1, 3))
            )

    def test_replace_empty_noop(self, estimator):
        before = estimator.sample.copy()
        estimator.replace_points(np.array([], dtype=int), np.empty((0, 3)))
        np.testing.assert_array_equal(estimator.sample, before)


class TestFailureInjection:
    def test_rejects_nan_sample(self):
        sample = np.array([[0.0, np.nan, 0.0]])
        with pytest.raises(ValueError, match="non-finite"):
            KernelDensityEstimator(sample, [1.0, 1.0, 1.0])

    def test_rejects_inf_sample(self):
        sample = np.array([[0.0, np.inf, 0.0]])
        with pytest.raises(ValueError, match="non-finite"):
            KernelDensityEstimator(sample, [1.0, 1.0, 1.0])

    def test_degenerate_dimension_still_works(self):
        """A constant column (zero variance) must not break estimation."""
        sample = np.column_stack([np.full(50, 7.0), np.linspace(0, 1, 50)])
        est = KernelDensityEstimator(sample, scott_bandwidth(sample))
        box = Box([6.0, 0.2], [8.0, 0.8])
        assert 0.0 <= est.selectivity(box) <= 1.0
        outside = Box([8.0, 0.2], [9.0, 0.8])
        assert est.selectivity(outside) == pytest.approx(0.0, abs=1e-6)

    def test_extreme_bandwidth_magnitudes(self, small_sample):
        for h in (1e-12, 1e12):
            est = KernelDensityEstimator(small_sample, np.full(3, h))
            box = Box([-1.0] * 3, [1.0] * 3)
            estimate = est.selectivity(box)
            assert np.isfinite(estimate)
            assert 0.0 <= estimate <= 1.0

    def test_duplicate_sample_points(self):
        sample = np.zeros((100, 2))
        est = KernelDensityEstimator(sample, [0.5, 0.5])
        assert est.selectivity(Box([-1.0, -1.0], [1.0, 1.0])) > 0.5
