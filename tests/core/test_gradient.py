"""Tests for the chain-rule loss gradient (Eq. 14) and log-space variant."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.gradient import (
    QueryFeedback,
    loss_and_gradient,
    to_log_space_gradient,
    workload_loss_and_gradient,
)
from repro.core.losses import get_loss


@pytest.fixture
def estimator(small_sample):
    return KernelDensityEstimator(small_sample, scott_bandwidth(small_sample))


@pytest.fixture
def feedback():
    return QueryFeedback(Box([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]), 0.25)


class TestQueryFeedback:
    def test_valid(self):
        fb = QueryFeedback(Box([0.0], [1.0]), 0.5)
        assert fb.selectivity == 0.5

    @pytest.mark.parametrize("sel", [-0.1, 1.1, 2.0])
    def test_rejects_out_of_range(self, sel):
        with pytest.raises(ValueError):
            QueryFeedback(Box([0.0], [1.0]), sel)

    def test_boundary_values_allowed(self):
        QueryFeedback(Box([0.0], [1.0]), 0.0)
        QueryFeedback(Box([0.0], [1.0]), 1.0)


class TestLossAndGradient:
    @pytest.mark.parametrize(
        "loss_name", ["squared", "absolute", "relative", "squared_relative", "squared_q"]
    )
    def test_matches_finite_difference(self, estimator, feedback, loss_name):
        loss = get_loss(loss_name)
        value, grad, estimate = loss_and_gradient(estimator, feedback, loss)
        assert value == pytest.approx(
            float(loss.value(estimate, feedback.selectivity))
        )
        h0 = estimator.bandwidth
        eps = 1e-6
        for i in range(3):
            hp, hm = h0.copy(), h0.copy()
            hp[i] += eps
            hm[i] -= eps
            estimator.bandwidth = hp
            up = float(
                loss.value(estimator.selectivity(feedback.query), feedback.selectivity)
            )
            estimator.bandwidth = hm
            down = float(
                loss.value(estimator.selectivity(feedback.query), feedback.selectivity)
            )
            estimator.bandwidth = h0
            fd = (up - down) / (2 * eps)
            assert grad[i] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_estimate_returned(self, estimator, feedback):
        _, _, estimate = loss_and_gradient(estimator, feedback, "squared")
        assert estimate == pytest.approx(estimator.selectivity(feedback.query))

    def test_log_space_scaling(self, estimator, feedback):
        _, grad_lin, _ = loss_and_gradient(estimator, feedback, "squared")
        _, grad_log, _ = loss_and_gradient(
            estimator, feedback, "squared", log_space=True
        )
        np.testing.assert_allclose(
            grad_log, grad_lin * estimator.bandwidth, atol=1e-14
        )

    def test_zero_gradient_at_perfect_estimate(self, estimator):
        box = Box([-1.0] * 3, [1.0] * 3)
        perfect = estimator.selectivity(box)
        _, grad, _ = loss_and_gradient(
            estimator, QueryFeedback(box, perfect), "squared"
        )
        np.testing.assert_allclose(grad, 0.0, atol=1e-10)


class TestWorkloadGradient:
    def test_average_of_single_queries(self, estimator):
        boxes = [
            Box([-1.0] * 3, [1.0] * 3),
            Box([0.0] * 3, [2.0] * 3),
            Box([-2.0] * 3, [0.0] * 3),
        ]
        workload = [QueryFeedback(b, 0.1 * (i + 1)) for i, b in enumerate(boxes)]
        total_value, total_grad = workload_loss_and_gradient(
            estimator, workload, "squared"
        )
        values, grads = [], []
        for fb in workload:
            v, g, _ = loss_and_gradient(estimator, fb, "squared")
            values.append(v)
            grads.append(g)
        assert total_value == pytest.approx(np.mean(values))
        np.testing.assert_allclose(total_grad, np.mean(grads, axis=0), atol=1e-14)

    def test_empty_workload_raises(self, estimator):
        with pytest.raises(ValueError):
            workload_loss_and_gradient(estimator, [], "squared")


class TestLogSpaceTransform:
    def test_elementwise_product(self):
        grad = np.array([1.0, -2.0, 0.5])
        h = np.array([0.1, 2.0, 4.0])
        np.testing.assert_allclose(
            to_log_space_gradient(grad, h), [0.1, -4.0, 2.0]
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            to_log_space_gradient(np.ones(2), np.ones(3))

    def test_log_space_fd_consistency(self, estimator, feedback):
        """d L / d log h computed analytically matches FD in log space."""
        _, grad_log, _ = loss_and_gradient(
            estimator, feedback, "squared", log_space=True
        )
        loss = get_loss("squared")
        log_h0 = np.log(estimator.bandwidth)
        eps = 1e-6
        for i in range(3):
            up_h, down_h = log_h0.copy(), log_h0.copy()
            up_h[i] += eps
            down_h[i] -= eps
            estimator.bandwidth = np.exp(up_h)
            up = float(
                loss.value(estimator.selectivity(feedback.query), feedback.selectivity)
            )
            estimator.bandwidth = np.exp(down_h)
            down = float(
                loss.value(estimator.selectivity(feedback.query), feedback.selectivity)
            )
            estimator.bandwidth = np.exp(log_h0)
            fd = (up - down) / (2 * eps)
            assert grad_log[i] == pytest.approx(fd, rel=1e-4, abs=1e-8)
