"""Tests for KDE-based join selectivity estimation (Section 8)."""

import numpy as np
import pytest

from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.core.join import (
    band_join_selectivity,
    equi_join_density,
    independence_band_join_selectivity,
)
from repro.db import Table
from repro.db.join import band_join_count, hash_join, pk_fk_join_sample


@pytest.fixture
def key_tables(rng):
    r = np.column_stack([rng.normal(0.0, 1.0, 8000), rng.normal(size=8000)])
    s = np.column_stack([rng.normal(0.5, 1.2, 6000), rng.normal(size=6000)])
    return Table(2, initial_rows=r), Table(2, initial_rows=s)


def make_kde(table, rng, size=512):
    sample = table.analyze(size, rng)
    return KernelDensityEstimator(sample, scott_bandwidth(sample))


class TestBandJoin:
    def test_close_to_truth(self, key_tables, rng):
        left, right = key_tables
        epsilon = 0.05
        truth = band_join_count(left, right, 0, 0, epsilon) / (
            len(left) * len(right)
        )
        estimate = band_join_selectivity(
            make_kde(left, rng), make_kde(right, rng), [0], [0], epsilon
        )
        assert estimate == pytest.approx(truth, rel=0.25)

    def test_in_unit_interval(self, key_tables, rng):
        left, right = key_tables
        estimate = band_join_selectivity(
            make_kde(left, rng), make_kde(right, rng), [0], [0], 0.1
        )
        assert 0.0 <= estimate <= 1.0

    def test_monotone_in_epsilon(self, key_tables, rng):
        left, right = key_tables
        kde_l, kde_r = make_kde(left, rng), make_kde(right, rng)
        narrow = band_join_selectivity(kde_l, kde_r, [0], [0], 0.01)
        wide = band_join_selectivity(kde_l, kde_r, [0], [0], 0.5)
        assert wide > narrow

    def test_huge_band_is_cross_product(self, key_tables, rng):
        left, right = key_tables
        estimate = band_join_selectivity(
            make_kde(left, rng), make_kde(right, rng), [0], [0], 1e6
        )
        assert estimate == pytest.approx(1.0, abs=1e-9)

    def test_multi_key(self, rng):
        data_l = rng.normal(size=(4000, 3))
        data_r = rng.normal(size=(4000, 3))
        left = Table(3, initial_rows=data_l)
        right = Table(3, initial_rows=data_r)
        kde_l, kde_r = make_kde(left, rng), make_kde(right, rng)
        two_keys = band_join_selectivity(
            kde_l, kde_r, [0, 1], [0, 1], 0.2
        )
        one_key = band_join_selectivity(kde_l, kde_r, [0], [0], 0.2)
        assert 0.0 < two_keys < one_key

    def test_validation(self, key_tables, rng):
        left, right = key_tables
        kde_l, kde_r = make_kde(left, rng), make_kde(right, rng)
        with pytest.raises(ValueError):
            band_join_selectivity(kde_l, kde_r, [], [], 0.1)
        with pytest.raises(ValueError):
            band_join_selectivity(kde_l, kde_r, [0], [0, 1], 0.1)
        with pytest.raises(ValueError):
            band_join_selectivity(kde_l, kde_r, [5], [0], 0.1)
        with pytest.raises(ValueError):
            band_join_selectivity(kde_l, kde_r, [0], [0], 0.0)

    def test_requires_gaussian(self, key_tables, rng):
        left, right = key_tables
        sample = left.analyze(128, rng)
        epan = KernelDensityEstimator(
            sample, scott_bandwidth(sample), kernel="epanechnikov"
        )
        with pytest.raises(ValueError, match="Gaussian"):
            band_join_selectivity(epan, make_kde(right, rng), [0], [0], 0.1)


class TestEquiJoinDensity:
    def test_matches_band_limit(self, key_tables, rng):
        """density * 2 eps approximates the small-band selectivity."""
        left, right = key_tables
        kde_l, kde_r = make_kde(left, rng), make_kde(right, rng)
        epsilon = 0.01
        band = band_join_selectivity(kde_l, kde_r, [0], [0], epsilon)
        density = equi_join_density(kde_l, kde_r, [0], [0])
        assert density * 2 * epsilon == pytest.approx(band, rel=0.02)

    def test_positive(self, key_tables, rng):
        left, right = key_tables
        assert equi_join_density(
            make_kde(left, rng), make_kde(right, rng), [0], [0]
        ) > 0.0

    def test_disjoint_keys_near_zero(self, rng):
        left = Table(1, initial_rows=rng.normal(0.0, 0.1, (2000, 1)))
        right = Table(1, initial_rows=rng.normal(100.0, 0.1, (2000, 1)))
        density = equi_join_density(
            make_kde(left, rng), make_kde(right, rng), [0], [0]
        )
        assert density < 1e-12


class TestIndependenceBaseline:
    def test_reasonable_on_smooth_keys(self, key_tables):
        left, right = key_tables
        epsilon = 0.05
        truth = band_join_count(left, right, 0, 0, epsilon) / (
            len(left) * len(right)
        )
        estimate = independence_band_join_selectivity(
            left.rows()[:, 0], right.rows()[:, 0], epsilon
        )
        assert estimate == pytest.approx(truth, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            independence_band_join_selectivity(np.array([]), np.ones(3), 0.1)
        with pytest.raises(ValueError):
            independence_band_join_selectivity(np.ones(3), np.ones(3), 0.0)


class TestHashJoin:
    def test_simple_join(self):
        left = Table(2, initial_rows=np.array([[1.0, 10.0], [2.0, 20.0]]))
        right = Table(2, initial_rows=np.array([[2.0, 200.0], [3.0, 300.0]]))
        result = hash_join(left, right, 0, 0)
        assert result.shape == (1, 4)
        np.testing.assert_array_equal(result[0], [2.0, 20.0, 2.0, 200.0])

    def test_duplicate_keys(self):
        left = Table(1, initial_rows=np.array([[1.0], [1.0]]))
        right = Table(1, initial_rows=np.array([[1.0], [1.0], [1.0]]))
        assert hash_join(left, right, 0, 0).shape == (6, 2)

    def test_empty_result(self):
        left = Table(1, initial_rows=np.array([[1.0]]))
        right = Table(1, initial_rows=np.array([[2.0]]))
        assert hash_join(left, right, 0, 0).shape == (0, 2)

    def test_key_validation(self):
        left = Table(1, initial_rows=np.array([[1.0]]))
        with pytest.raises(ValueError):
            hash_join(left, left, 3, 0)


class TestPkFkJoinSample:
    @pytest.fixture
    def star(self, rng):
        keys = np.arange(500.0)
        dimension = Table(
            2, initial_rows=np.column_stack([keys, rng.normal(size=500)])
        )
        fk = rng.integers(0, 500, size=4000).astype(np.float64)
        fact = Table(2, initial_rows=np.column_stack([fk, rng.normal(size=4000)]))
        return fact, dimension

    def test_sample_shape_and_keys_match(self, star, rng):
        fact, dimension = star
        sample = pk_fk_join_sample(fact, dimension, 0, 0, 128, rng)
        assert sample.shape == (128, 4)
        np.testing.assert_allclose(sample[:, 0], sample[:, 2])

    def test_post_join_estimator(self, star, rng):
        """The paper's PK-FK route: a KDE over the join sample answers
        post-join range predicates.

        The duplicated key column is dropped before building the model —
        keeping two perfectly correlated copies would compound the
        product kernel's boundary loss.
        """
        from repro.geometry import Box

        fact, dimension = star
        columns = [0, 1, 3]  # key, fact value, dimension value
        full = hash_join(fact, dimension, 0, 0)[:, columns]
        sample = pk_fk_join_sample(fact, dimension, 0, 0, 512, rng)[:, columns]
        est = KernelDensityEstimator(sample, scott_bandwidth(sample))
        box = Box([0.0, -1.0, -0.5], [250.0, 1.0, 10.0])
        truth = float(box.contains_points(full).mean())
        assert est.selectivity(box) == pytest.approx(truth, abs=0.08)

    def test_dangling_keys_skipped(self, rng):
        dimension = Table(1, initial_rows=np.array([[1.0]]))
        fact = Table(
            1, initial_rows=np.array([[1.0], [99.0], [99.0], [99.0]])
        )
        sample = pk_fk_join_sample(fact, dimension, 0, 0, 8, rng)
        assert (sample[:, 0] == 1.0).all()

    def test_validation(self, star, rng):
        fact, dimension = star
        with pytest.raises(ValueError):
            pk_fk_join_sample(fact, dimension, 0, 0, 0, rng)
        with pytest.raises(ValueError):
            pk_fk_join_sample(Table(1), dimension, 0, 0, 5, rng)


class TestBandJoinCount:
    def test_matches_brute_force(self, rng):
        left = Table(1, initial_rows=rng.normal(size=(300, 1)))
        right = Table(1, initial_rows=rng.normal(size=(200, 1)))
        epsilon = 0.1
        expected = sum(
            int(np.sum(np.abs(right.rows()[:, 0] - v) <= epsilon))
            for v in left.rows()[:, 0]
        )
        assert band_join_count(left, right, 0, 0, epsilon) == expected

    def test_validation(self, rng):
        table = Table(1, initial_rows=rng.normal(size=(10, 1)))
        with pytest.raises(ValueError):
            band_join_count(table, table, 0, 0, -1.0)
