"""Property tests for the closed-form join integrals.

Two analytic invariants of the Gaussian joint-integral machinery:

1. **Equality limit**: as ``epsilon -> 0`` the band-join selectivity
   ``P(|X - Y| <= eps)`` converges to ``equi_join_density * 2 eps``
   (band width), since the difference density is continuous — the
   relation the optimizer's joint-integral pricing rung relies on when
   it converts a density into an equi-join selectivity via
   ``key_width``.

2. **Monte-Carlo equivalence**: the closed form equals the probability
   it claims to integrate.  Drawing ``X`` from the left KDE's mixture
   and ``Y`` from the right's, the empirical rate of ``|X - Y| <= eps``
   matches ``band_join_selectivity`` within sampling error.
"""

import numpy as np
import pytest

from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.core.chunking import get_chunk_budget, set_chunk_budget
from repro.core.join import band_join_selectivity, equi_join_density


def make_pair(seed=0, s_left=256, s_right=192):
    rng = np.random.default_rng(seed)
    left = rng.normal(0.0, 1.0, size=(s_left, 2))
    right = np.column_stack(
        [rng.normal(0.4, 1.3, s_right), rng.normal(size=s_right)]
    )
    kde_l = KernelDensityEstimator(left, scott_bandwidth(left))
    kde_r = KernelDensityEstimator(right, scott_bandwidth(right))
    return kde_l, kde_r


class TestEqualityLimit:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_band_converges_to_density_times_width(self, seed):
        """band(eps) / (2 eps) -> equi_join_density as eps -> 0, and the
        approximation error shrinks monotonically (to first order)."""
        kde_l, kde_r = make_pair(seed)
        density = equi_join_density(kde_l, kde_r, [0], [0])
        errors = []
        for epsilon in (0.5, 0.1, 0.02, 0.004):
            band = band_join_selectivity(kde_l, kde_r, [0], [0], epsilon)
            errors.append(abs(band / (2.0 * epsilon) - density))
        # Tightest band is within 0.1% of the density...
        assert errors[-1] <= 1e-3 * density
        # ...and halving epsilon never makes the approximation worse.
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_multikey_limit(self):
        """The limit holds per key dimension: with two join keys the
        band selectivity approaches density * (2 eps)^2."""
        kde_l, kde_r = make_pair(3)
        density = equi_join_density(kde_l, kde_r, [0, 1], [0, 1])
        epsilon = 0.005
        band = band_join_selectivity(
            kde_l, kde_r, [0, 1], [0, 1], epsilon
        )
        assert band / (2.0 * epsilon) ** 2 == pytest.approx(
            density, rel=1e-2
        )


class TestMonteCarloEquivalence:
    def _sample_mixture(self, kde, count, rng):
        """Draw from the KDE's Gaussian mixture: pick a sample point,
        add bandwidth-scaled noise."""
        picks = rng.integers(0, kde.sample.shape[0], count)
        noise = rng.normal(size=(count, kde.dimensions)) * kde.bandwidth
        return kde.sample[picks] + noise

    @pytest.mark.parametrize("epsilon", [0.05, 0.2])
    def test_closed_form_matches_direct_sampling(self, epsilon):
        kde_l, kde_r = make_pair(7)
        closed = band_join_selectivity(kde_l, kde_r, [0], [0], epsilon)

        rng = np.random.default_rng(42)
        draws = 200_000
        x = self._sample_mixture(kde_l, draws, rng)[:, 0]
        y = self._sample_mixture(kde_r, draws, rng)[:, 0]
        empirical = float(np.mean(np.abs(x - y) <= epsilon))

        # Monte-Carlo standard error of a Bernoulli rate.
        stderr = np.sqrt(max(empirical * (1 - empirical), 1e-12) / draws)
        assert closed == pytest.approx(empirical, abs=5 * stderr + 1e-4)


class TestChunkBudgetInvariance:
    def test_results_identical_across_budgets(self):
        """The chunking policy changes traversal order only — the
        selectivity and density must be bit-stable across budgets."""
        kde_l, kde_r = make_pair(9)
        previous = get_chunk_budget()
        try:
            set_chunk_budget(previous)
            band_ref = band_join_selectivity(kde_l, kde_r, [0], [0], 0.1)
            density_ref = equi_join_density(kde_l, kde_r, [0], [0])
            for budget in (1, 37, 4096):
                set_chunk_budget(budget)
                assert band_join_selectivity(
                    kde_l, kde_r, [0], [0], 0.1
                ) == pytest.approx(band_ref, rel=1e-12)
                assert equi_join_density(
                    kde_l, kde_r, [0], [0]
                ) == pytest.approx(density_ref, rel=1e-12)
        finally:
            set_chunk_budget(previous)
