"""Tests for Karma-based sample maintenance (Eqs. 6-8, Appendix E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.config import KarmaConfig
from repro.core.estimator import KernelDensityEstimator
from repro.core.karma import (
    KarmaTracker,
    certified_inside_mask,
    leave_one_out_estimates,
)


class TestLeaveOneOut:
    def test_identity_eq6(self):
        """Removing point i and re-averaging matches the Eq. (6) shortcut."""
        rng = np.random.default_rng(0)
        contributions = rng.uniform(0, 1, size=50)
        loo = leave_one_out_estimates(contributions)
        for i in range(50):
            expected = np.delete(contributions, i).mean()
            assert loo[i] == pytest.approx(expected, abs=1e-12)

    def test_with_precomputed_estimate(self):
        contributions = np.array([0.1, 0.5, 0.9])
        estimate = float(contributions.mean())
        np.testing.assert_allclose(
            leave_one_out_estimates(contributions, estimate),
            leave_one_out_estimates(contributions),
        )

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            leave_one_out_estimates(np.array([0.5]))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(2, 100),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_loo_in_unit_interval(self, contributions):
        loo = leave_one_out_estimates(contributions)
        assert (loo >= -1e-12).all() and (loo <= 1.0 + 1e-12).all()


class TestCertifiedInsideMask:
    def _setup(self, rng, bandwidth_scale=1.0):
        sample = rng.uniform(-5, 5, size=(200, 2))
        bandwidth = np.array([0.3, 0.3]) * bandwidth_scale
        est = KernelDensityEstimator(sample, bandwidth)
        return sample, bandwidth, est

    def test_soundness(self, rng):
        """Every certified point must actually lie inside the region."""
        sample, bandwidth, est = self._setup(rng)
        query = Box([-1.0, -1.0], [1.0, 1.0])
        contributions = est.contributions(query)
        mask = certified_inside_mask(contributions, query, bandwidth)
        actually_inside = query.contains_points(sample)
        assert (~mask | actually_inside).all()

    def test_catches_deep_interior_points(self, rng):
        """With a small bandwidth, points well inside must be certified."""
        sample, bandwidth, est = self._setup(rng, bandwidth_scale=0.3)
        query = Box([-2.0, -2.0], [2.0, 2.0])
        contributions = est.contributions(query)
        mask = certified_inside_mask(contributions, query, bandwidth)
        deep = Box([-1.0, -1.0], [1.0, 1.0]).contains_points(sample)
        # All deep-interior points produce contributions near 1, well above
        # the outside bound.
        assert mask[deep].all()

    def test_huge_bandwidth_certifies_nothing_wrong(self, rng):
        sample, bandwidth, est = self._setup(rng, bandwidth_scale=50.0)
        query = Box([-0.5, -0.5], [0.5, 0.5])
        contributions = est.contributions(query)
        mask = certified_inside_mask(contributions, query, bandwidth)
        actually_inside = query.contains_points(sample)
        assert (~mask | actually_inside).all()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            certified_inside_mask(
                np.array([0.5]), Box([0.0, 0.0], [1.0, 1.0]), np.array([1.0])
            )

    @given(st.floats(0.05, 5.0), st.floats(0.1, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_soundness_property(self, bandwidth, width):
        rng = np.random.default_rng(int(bandwidth * 1000 + width * 100))
        sample = rng.uniform(-6, 6, size=(100, 2))
        bw = np.array([bandwidth, bandwidth])
        est = KernelDensityEstimator(sample, bw)
        query = Box([-width, -width], [width, width])
        contributions = est.contributions(query)
        mask = certified_inside_mask(contributions, query, bw)
        inside = query.contains_points(sample)
        assert (~mask | inside).all()


class TestKarmaConfig:
    def test_defaults(self):
        cfg = KarmaConfig()
        assert cfg.k_max == 4.0
        assert cfg.empty_region_shortcut

    def test_threshold_below_kmax(self):
        with pytest.raises(ValueError):
            KarmaConfig(k_max=1.0, threshold=2.0)


class TestKarmaTracker:
    def test_initial_state(self):
        tracker = KarmaTracker(10)
        np.testing.assert_array_equal(tracker.karma, np.zeros(10))
        assert tracker.replacements == 0

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            KarmaTracker(1)

    def test_rejects_bad_selectivity(self):
        tracker = KarmaTracker(4)
        with pytest.raises(ValueError):
            tracker.update(np.zeros(4), 1.5)

    def test_rejects_wrong_contribution_count(self):
        tracker = KarmaTracker(4)
        with pytest.raises(ValueError):
            tracker.update(np.zeros(5), 0.5)

    def test_helpful_points_gain_karma(self):
        # True selectivity 0.5; three points contribute 0.5 (good), one
        # contributes 0.9 (bad: its absence improves the estimate).
        tracker = KarmaTracker(4)
        contributions = np.array([0.5, 0.5, 0.5, 0.9])
        tracker.update(contributions, 0.5)
        karma = tracker.karma
        assert karma[3] < 0.0
        assert (karma[:3] > 0.0).all()

    def test_saturation_at_kmax(self):
        tracker = KarmaTracker(3, config=KarmaConfig(k_max=0.001))
        contributions = np.array([0.5, 0.5, 0.0])
        for _ in range(50):
            tracker.update(contributions, 0.5)
        assert (tracker.karma <= 0.001 + 1e-15).all()

    def test_bad_points_eventually_flagged(self):
        tracker = KarmaTracker(
            4, config=KarmaConfig(threshold=-0.01, empty_region_shortcut=False)
        )
        contributions = np.array([0.1, 0.1, 0.1, 1.0])
        flagged = np.array([], dtype=int)
        for _ in range(200):
            flagged = tracker.update(contributions, 0.1)
            if flagged.size:
                break
        assert 3 in flagged

    def test_reset(self):
        tracker = KarmaTracker(3, config=KarmaConfig(threshold=-1e-6))
        tracker.update(np.array([0.0, 0.0, 1.0]), 0.0)
        assert tracker.karma[2] < 0
        tracker.reset(np.array([2]))
        assert tracker.karma[2] == 0.0

    def test_reset_out_of_range(self):
        tracker = KarmaTracker(3)
        with pytest.raises(IndexError):
            tracker.reset(np.array([5]))

    def test_empty_region_shortcut_flags_inside_points(self, rng):
        sample = rng.uniform(-5, 5, size=(100, 2))
        bandwidth = np.array([0.2, 0.2])
        est = KernelDensityEstimator(sample, bandwidth)
        query = Box([-2.0, -2.0], [2.0, 2.0])
        contributions = est.contributions(query)
        tracker = KarmaTracker(100)
        flagged = tracker.update(
            contributions, 0.0, query=query, bandwidth=bandwidth
        )
        deep_inside = Box([-1.0, -1.0], [1.0, 1.0]).contains_points(sample)
        flagged_mask = np.zeros(100, dtype=bool)
        flagged_mask[flagged] = True
        # Every deep-interior point is flagged on the very first query.
        assert flagged_mask[deep_inside].all()
        # And nothing outside the region is flagged.
        inside = query.contains_points(sample)
        assert (~flagged_mask | inside).all()

    def test_shortcut_disabled(self, rng):
        sample = rng.uniform(-1, 1, size=(50, 2))
        bandwidth = np.array([0.1, 0.1])
        est = KernelDensityEstimator(sample, bandwidth)
        query = Box([-1.0, -1.0], [1.0, 1.0])
        contributions = est.contributions(query)
        tracker = KarmaTracker(
            50, config=KarmaConfig(empty_region_shortcut=False)
        )
        flagged = tracker.update(
            contributions, 0.0, query=query, bandwidth=bandwidth
        )
        # One query is never enough to cross the default threshold without
        # the shortcut.
        assert flagged.size == 0

    def test_shortcut_only_on_zero_selectivity(self, rng):
        sample = rng.uniform(-1, 1, size=(50, 2))
        bandwidth = np.array([0.1, 0.1])
        est = KernelDensityEstimator(sample, bandwidth)
        query = Box([-1.0, -1.0], [1.0, 1.0])
        contributions = est.contributions(query)
        tracker = KarmaTracker(50)
        flagged = tracker.update(
            contributions, 0.4, query=query, bandwidth=bandwidth
        )
        assert flagged.size == 0

    def test_replacements_counter(self, rng):
        sample = rng.uniform(-5, 5, size=(100, 2))
        bandwidth = np.array([0.2, 0.2])
        est = KernelDensityEstimator(sample, bandwidth)
        query = Box([-2.0, -2.0], [2.0, 2.0])
        tracker = KarmaTracker(100)
        flagged = tracker.update(
            est.contributions(query), 0.0, query=query, bandwidth=bandwidth
        )
        assert tracker.replacements == flagged.size
        assert tracker.queries_observed == 1

    def test_good_estimates_accumulate_no_flags(self, rng):
        """When estimates are accurate, karma stays near zero for all."""
        sample = rng.normal(size=(64, 2))
        bandwidth = scott_bandwidth(sample)
        est = KernelDensityEstimator(sample, bandwidth)
        tracker = KarmaTracker(64)
        for _ in range(50):
            center = rng.normal(size=2)
            query = Box(center - 0.5, center + 0.5)
            contributions = est.contributions(query)
            estimate = float(contributions.mean())
            flagged = tracker.update(
                contributions, estimate, query=query, bandwidth=bandwidth
            )
            assert flagged.size == 0
