"""Tests for the kernel functions and their interval integrals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import integrate

from repro.core.kernels import (
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    get_kernel,
    register_kernel,
)

KERNELS = [GaussianKernel(), EpanechnikovKernel()]


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
class TestKernelBasics:
    def test_pdf_non_negative(self, kernel):
        z = np.linspace(-5, 5, 201)
        assert (kernel.pdf(z) >= 0.0).all()

    def test_pdf_symmetric(self, kernel):
        z = np.linspace(0, 5, 101)
        np.testing.assert_allclose(kernel.pdf(z), kernel.pdf(-z), atol=1e-12)

    def test_pdf_integrates_to_one(self, kernel):
        total, _ = integrate.quad(lambda z: float(kernel.pdf(z)), -10, 10)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_cdf_monotone(self, kernel):
        z = np.linspace(-5, 5, 500)
        cdf = kernel.cdf(z)
        assert (np.diff(cdf) >= -1e-15).all()

    def test_cdf_limits(self, kernel):
        assert kernel.cdf(np.array(-100.0)) == pytest.approx(0.0, abs=1e-12)
        assert kernel.cdf(np.array(100.0)) == pytest.approx(1.0, abs=1e-12)
        assert kernel.cdf(np.array(0.0)) == pytest.approx(0.5, abs=1e-12)

    def test_cdf_matches_pdf_integral(self, kernel):
        for z in (-1.5, -0.3, 0.0, 0.7, 2.0):
            expected, _ = integrate.quad(lambda t: float(kernel.pdf(t)), -10, z)
            assert float(kernel.cdf(np.array(z))) == pytest.approx(
                expected, abs=1e-8
            )

    def test_interval_mass_in_unit_range(self, kernel):
        points = np.linspace(-3, 3, 50)
        mass = kernel.interval_mass(-1.0, 1.0, points, 0.5)
        assert ((mass >= 0.0) & (mass <= 1.0)).all()

    def test_interval_mass_whole_line(self, kernel):
        mass = kernel.interval_mass(-1e6, 1e6, np.array([0.0, 3.0]), 1.0)
        np.testing.assert_allclose(mass, 1.0, atol=1e-12)

    def test_interval_mass_empty_interval(self, kernel):
        mass = kernel.interval_mass(0.5, 0.5, np.array([0.0]), 1.0)
        assert mass[0] == pytest.approx(0.0, abs=1e-12)

    def test_interval_mass_peaks_at_center(self, kernel):
        points = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        mass = kernel.interval_mass(-1.0, 1.0, points, 0.8)
        assert mass[2] == mass.max()

    def test_interval_mass_grad_matches_finite_difference(self, kernel):
        points = np.linspace(-2, 2, 9)
        h = 0.7
        eps = 1e-6
        grad = kernel.interval_mass_grad(-1.0, 0.5, points, h)
        fd = (
            kernel.interval_mass(-1.0, 0.5, points, h + eps)
            - kernel.interval_mass(-1.0, 0.5, points, h - eps)
        ) / (2 * eps)
        np.testing.assert_allclose(grad, fd, atol=1e-6)

    def test_interval_mass_grad_sign(self, kernel):
        # A point far outside the interval gains mass from a larger
        # bandwidth; a point at the centre loses mass.
        outside = kernel.interval_mass_grad(-1.0, 1.0, np.array([10.0]), 3.0)
        center = kernel.interval_mass_grad(-1.0, 1.0, np.array([0.0]), 3.0)
        assert outside[0] >= 0.0
        assert center[0] <= 0.0


class TestGaussianSpecifics:
    def test_matches_scipy_normal(self):
        from scipy.stats import norm

        kernel = GaussianKernel()
        z = np.linspace(-4, 4, 101)
        np.testing.assert_allclose(kernel.pdf(z), norm.pdf(z), atol=1e-12)
        np.testing.assert_allclose(kernel.cdf(z), norm.cdf(z), atol=1e-12)

    def test_eq13_closed_form(self):
        """interval_mass equals the explicit erf expression of Eq. (13)."""
        from scipy.special import erf

        kernel = GaussianKernel()
        t = np.array([0.3, -1.2, 2.0])
        low, high, h = -0.5, 1.5, 0.8
        expected = 0.5 * (
            erf((high - t) / (math.sqrt(2) * h))
            - erf((low - t) / (math.sqrt(2) * h))
        )
        np.testing.assert_allclose(
            kernel.interval_mass(low, high, t, h), expected, atol=1e-14
        )


class TestEpanechnikovSpecifics:
    def test_compact_support(self):
        kernel = EpanechnikovKernel()
        assert kernel.pdf(np.array(1.5)) == 0.0
        assert kernel.cdf(np.array(1.5)) == pytest.approx(1.0)
        assert kernel.cdf(np.array(-1.5)) == pytest.approx(0.0)

    def test_peak_value(self):
        kernel = EpanechnikovKernel()
        assert kernel.pdf(np.array(0.0)) == pytest.approx(0.75)


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_kernel("gaussian"), GaussianKernel)
        assert isinstance(get_kernel("epanechnikov"), EpanechnikovKernel)

    def test_get_passthrough(self):
        kernel = GaussianKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("boxcar")

    def test_register_requires_name(self):
        class Nameless(Kernel):
            name = ""

        with pytest.raises(ValueError):
            register_kernel(Nameless)


class TestKernelProperties:
    @given(
        st.floats(-10, 10),
        st.floats(0.01, 10),
        st.floats(0.05, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_mass_additivity(self, start, width, bandwidth):
        """Mass over [a, c] equals mass over [a, b] plus mass over [b, c]."""
        kernel = GaussianKernel()
        a, b, c = start, start + width / 2, start + width
        points = np.array([0.0, 1.0, -3.0])
        whole = kernel.interval_mass(a, c, points, bandwidth)
        parts = kernel.interval_mass(a, b, points, bandwidth) + kernel.interval_mass(
            b, c, points, bandwidth
        )
        np.testing.assert_allclose(whole, parts, atol=1e-12)

    @given(st.floats(0.05, 5), st.floats(-5, 5))
    @settings(max_examples=100, deadline=None)
    def test_mass_translation_invariance(self, bandwidth, shift):
        kernel = EpanechnikovKernel()
        points = np.array([0.2, -0.7])
        base = kernel.interval_mass(-1.0, 1.0, points, bandwidth)
        shifted = kernel.interval_mass(
            -1.0 + shift, 1.0 + shift, points + shift, bandwidth
        )
        np.testing.assert_allclose(base, shifted, atol=1e-12)
