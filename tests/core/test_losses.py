"""Tests for the loss functions of Appendix C.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import (
    AbsoluteLoss,
    Loss,
    RelativeLoss,
    SquaredLoss,
    SquaredQLoss,
    SquaredRelativeLoss,
    get_loss,
    register_loss,
)

ALL_LOSSES = [
    SquaredLoss(),
    AbsoluteLoss(),
    RelativeLoss(),
    SquaredRelativeLoss(),
    SquaredQLoss(),
]

selectivities = st.floats(0.0, 1.0, allow_nan=False)


@pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
class TestCommonContract:
    def test_zero_at_equality(self, loss):
        for p in (0.0, 0.2, 1.0):
            assert float(loss.value(p, p)) == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self, loss):
        grid = np.linspace(0, 1, 11)
        est, act = np.meshgrid(grid, grid)
        assert (loss.value(est, act) >= 0.0).all()

    def test_vectorised(self, loss):
        est = np.array([0.1, 0.5, 0.9])
        act = np.array([0.2, 0.5, 0.1])
        values = loss.value(est, act)
        assert values.shape == (3,)
        for i in range(3):
            assert values[i] == pytest.approx(float(loss.value(est[i], act[i])))

    @given(selectivities, selectivities)
    @settings(max_examples=50, deadline=None)
    def test_derivative_matches_finite_difference(self, loss, est, act):
        eps = 1e-7
        lo, hi = max(est - eps, 0.0), min(est + eps, 1.0)
        if hi - lo < eps:  # too close to the boundary for a centred diff
            return
        fd = (float(loss.value(hi, act)) - float(loss.value(lo, act))) / (hi - lo)
        deriv = float(loss.derivative(est, act))
        # The absolute/relative losses have a kink at est == act where the
        # subgradient is sign-valued; skip a small neighbourhood.  The
        # Q-error loss has extreme curvature as est -> 0 (1/(lambda+est)
        # factor), where a centred difference is inaccurate; skip it too.
        if abs(est - act) < 1e-5 or est < 1e-3:
            return
        assert deriv == pytest.approx(fd, rel=1e-3, abs=1e-3)

    def test_derivative_sign(self, loss):
        # Overestimation must have non-negative derivative, underestimation
        # non-positive: pushing the estimate down/up reduces the loss.
        assert float(loss.derivative(0.8, 0.2)) >= 0.0
        assert float(loss.derivative(0.1, 0.6)) <= 0.0


class TestSpecificValues:
    def test_squared(self):
        assert float(SquaredLoss().value(0.5, 0.2)) == pytest.approx(0.09)
        assert float(SquaredLoss().derivative(0.5, 0.2)) == pytest.approx(0.6)

    def test_absolute(self):
        loss = AbsoluteLoss()
        assert float(loss.value(0.5, 0.2)) == pytest.approx(0.3)
        assert float(loss.derivative(0.5, 0.2)) == 1.0
        assert float(loss.derivative(0.2, 0.5)) == -1.0
        assert float(loss.derivative(0.3, 0.3)) == 0.0

    def test_relative(self):
        loss = RelativeLoss(smoothing=0.1)
        assert float(loss.value(0.5, 0.4)) == pytest.approx(0.1 / 0.5)
        assert float(loss.derivative(0.5, 0.4)) == pytest.approx(1.0 / 0.5)

    def test_squared_relative(self):
        loss = SquaredRelativeLoss(smoothing=0.1)
        assert float(loss.value(0.5, 0.4)) == pytest.approx((0.1 / 0.5) ** 2)

    def test_squared_q_symmetric_in_log(self):
        loss = SquaredQLoss(smoothing=1e-3)
        # Over- and under-estimating by the same *factor* costs the same.
        over = float(loss.value(0.4, 0.1))
        under = float(loss.value(0.1, 0.4))
        assert over == pytest.approx(under, rel=1e-12)

    def test_relative_penalises_small_actuals_more(self):
        loss = RelativeLoss(smoothing=1e-6)
        assert float(loss.value(0.11, 0.01)) > float(loss.value(0.6, 0.5))


class TestValidation:
    @pytest.mark.parametrize(
        "cls", [RelativeLoss, SquaredRelativeLoss, SquaredQLoss]
    )
    def test_rejects_non_positive_smoothing(self, cls):
        with pytest.raises(ValueError):
            cls(smoothing=0.0)
        with pytest.raises(ValueError):
            cls(smoothing=-1.0)


class TestRegistry:
    def test_lookup_by_name(self):
        for loss in ALL_LOSSES:
            assert get_loss(loss.name).name == loss.name

    def test_passthrough(self):
        loss = SquaredLoss()
        assert get_loss(loss) is loss

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("hinge")

    def test_register_requires_name(self):
        class Nameless(Loss):
            name = ""

        with pytest.raises(ValueError):
            register_loss(Nameless())
