"""Tests for the SelfTuningKDE facade (the Figure 3 feedback loop)."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core.config import AdaptiveConfig, KarmaConfig, SelfTuningConfig
from repro.core.model import ArrayRowSource, SelfTuningKDE

from ..conftest import true_selectivity


@pytest.fixture
def data(rng):
    return rng.normal(size=(10_000, 2))


@pytest.fixture
def model(data, rng):
    sample = data[rng.choice(len(data), size=128, replace=False)]
    return SelfTuningKDE(
        sample,
        row_source=ArrayRowSource(data),
        population_size=len(data),
        seed=7,
    )


class TestArrayRowSource:
    def test_shapes(self, data):
        source = ArrayRowSource(data)
        rows = source.sample_rows(5, np.random.default_rng(0))
        assert rows.shape == (5, 2)

    def test_rows_from_population(self, data):
        source = ArrayRowSource(data)
        rows = source.sample_rows(20, np.random.default_rng(1))
        for row in rows:
            assert (data == row).all(axis=1).any()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ArrayRowSource(np.empty((0, 2)))


class TestEstimation:
    def test_estimate_in_unit_interval(self, model, rng):
        for _ in range(10):
            center = rng.normal(size=2)
            box = Box(center - 0.5, center + 0.5)
            assert 0.0 <= model.estimate(box) <= 1.0

    def test_estimate_matches_underlying(self, model):
        box = Box([-1.0, -1.0], [1.0, 1.0])
        assert model.estimate(box) == pytest.approx(
            model.estimator.selectivity(box)
        )

    def test_scott_initialisation(self, data, rng):
        from repro.core.bandwidth import scott_bandwidth

        sample = data[:64]
        model = SelfTuningKDE(sample)
        np.testing.assert_allclose(model.bandwidth, scott_bandwidth(sample))

    def test_explicit_bandwidth(self, data):
        model = SelfTuningKDE(data[:64], bandwidth=np.array([0.5, 0.7]))
        np.testing.assert_array_equal(model.bandwidth, [0.5, 0.7])


class TestFeedbackLoop:
    def test_feedback_updates_bandwidth_after_batch(self, model, data, rng):
        cfg = model.config.adaptive
        before = model.bandwidth
        for _ in range(cfg.batch_size):
            center = data[rng.integers(len(data))]
            box = Box(center - 0.3, center + 0.3)
            model.estimate(box)
            model.feedback(box, true_selectivity(data, box))
        assert model.tuner.updates_applied == 1
        assert not np.array_equal(model.bandwidth, before)

    def test_feedback_without_estimate_recomputes(self, model, data):
        box = Box([-0.5, -0.5], [0.5, 0.5])
        model.feedback(box, true_selectivity(data, box))
        assert model.feedback_count == 1

    def test_feedback_with_mismatched_query_recomputes(self, model, data):
        model.estimate(Box([-1.0, -1.0], [1.0, 1.0]))
        other = Box([0.0, 0.0], [0.5, 0.5])
        model.feedback(other, true_selectivity(data, other))
        assert model.feedback_count == 1

    def test_feedback_rejects_bad_selectivity(self, model):
        box = Box([-1.0, -1.0], [1.0, 1.0])
        model.estimate(box)
        with pytest.raises(ValueError):
            model.feedback(box, 1.5)

    def test_adaptation_reduces_error(self, rng):
        """Online learning shrinks the error on a stable query workload."""
        clusters = np.vstack(
            [
                rng.normal(loc=0.0, scale=0.05, size=(5000, 2)),
                rng.normal(loc=3.0, scale=0.05, size=(5000, 2)),
            ]
        )
        sample = clusters[rng.choice(len(clusters), size=256, replace=False)]
        model = SelfTuningKDE(
            sample,
            row_source=ArrayRowSource(clusters),
            population_size=len(clusters),
            seed=3,
        )

        def workload_error():
            errors = []
            inner = np.random.default_rng(99)
            for _ in range(50):
                center = clusters[inner.integers(len(clusters))]
                box = Box(center - 0.1, center + 0.1)
                errors.append(
                    abs(model.estimate(box) - true_selectivity(clusters, box))
                )
            return float(np.mean(errors))

        before = workload_error()
        for _ in range(300):
            center = clusters[rng.integers(len(clusters))]
            box = Box(center - 0.1, center + 0.1)
            model.estimate(box)
            model.feedback(box, true_selectivity(clusters, box))
        after = workload_error()
        assert after < before

    def test_positivity_invariant_under_long_run(self, model, data, rng):
        for _ in range(150):
            center = data[rng.integers(len(data))]
            box = Box(center - rng.uniform(0.05, 1.0, 2),
                      center + rng.uniform(0.05, 1.0, 2))
            model.estimate(box)
            model.feedback(box, true_selectivity(data, box))
            assert (model.bandwidth > 0).all()

    def test_disabled_adaptation(self, data, rng):
        cfg = SelfTuningConfig(adapt_bandwidth=False)
        sample = data[:128]
        model = SelfTuningKDE(sample, config=cfg)
        before = model.bandwidth
        for _ in range(30):
            box = Box([-0.5, -0.5], [0.5, 0.5])
            model.estimate(box)
            model.feedback(box, true_selectivity(data, box))
        np.testing.assert_array_equal(model.bandwidth, before)


class TestSampleMaintenance:
    def test_stale_points_replaced_after_mass_deletion(self, rng):
        """Delete a cluster; karma maintenance flushes its sample points."""
        cluster_a = rng.normal(loc=0.0, scale=0.1, size=(3000, 2))
        cluster_b = rng.normal(loc=5.0, scale=0.1, size=(3000, 2))
        data = np.vstack([cluster_a, cluster_b])
        sample = data[rng.choice(len(data), size=128, replace=False)]
        # Simulate deleting cluster B: the row source only serves cluster A.
        model = SelfTuningKDE(
            sample,
            row_source=ArrayRowSource(cluster_a),
            population_size=len(cluster_a),
            seed=11,
        )
        in_b_before = int(
            Box([4.0, 4.0], [6.0, 6.0]).contains_points(model.estimator.sample).sum()
        )
        assert in_b_before > 0
        # Queries over the deleted cluster now return zero tuples.
        for _ in range(40):
            center = rng.normal(loc=5.0, scale=0.1, size=2)
            box = Box(center - 0.4, center + 0.4)
            model.estimate(box)
            model.feedback(box, 0.0)
        in_b_after = int(
            Box([4.0, 4.0], [6.0, 6.0]).contains_points(model.estimator.sample).sum()
        )
        assert in_b_after < in_b_before
        assert model.points_replaced > 0

    def test_no_row_source_no_replacement(self, data, rng):
        sample = data[:64]
        model = SelfTuningKDE(sample, seed=0)
        box = Box([-0.2, -0.2], [0.2, 0.2])
        for _ in range(30):
            model.estimate(box)
            model.feedback(box, 0.0)
        assert model.points_replaced == 0

    def test_maintenance_disabled(self, data, rng):
        cfg = SelfTuningConfig(maintain_sample=False)
        sample = data[:64]
        model = SelfTuningKDE(
            sample, config=cfg, row_source=ArrayRowSource(data), seed=0
        )
        before = model.estimator.sample.copy()
        box = Box([-0.2, -0.2], [0.2, 0.2])
        for _ in range(30):
            model.estimate(box)
            model.feedback(box, 0.0)
        np.testing.assert_array_equal(model.estimator.sample, before)


class TestInsertDelete:
    def test_insert_enters_sample_during_fill(self, data):
        model = SelfTuningKDE(data[:64], population_size=64, seed=0)
        # population == sample size: acceptance probability s/(n+1) < 1, so
        # run many inserts and require at least one acceptance.
        accepted = sum(
            model.on_insert(np.array([50.0, 50.0])) for _ in range(100)
        )
        assert accepted > 0
        assert Box([49.0, 49.0], [51.0, 51.0]).contains_points(
            model.estimator.sample
        ).any()

    def test_insert_updates_population(self, data):
        model = SelfTuningKDE(data[:64], population_size=1000, seed=0)
        for _ in range(10):
            model.on_insert(np.zeros(2))
        assert model.reservoir.population_size == 1010

    def test_insert_disabled(self, data):
        cfg = SelfTuningConfig(reservoir_inserts=False)
        model = SelfTuningKDE(data[:64], config=cfg, population_size=100)
        assert model.on_insert(np.array([9.0, 9.0])) is False
        assert model.reservoir.population_size == 101

    def test_delete_decrements_population(self, data):
        model = SelfTuningKDE(data[:64], population_size=100)
        model.on_delete()
        assert model.reservoir.population_size == 99

    def test_delete_never_negative(self, data):
        model = SelfTuningKDE(data[:64], population_size=0)
        model.on_delete()
        assert model.reservoir.population_size == 0


class TestDerivedSeeding:
    """The seed spawns independent tuner/reservoir streams (SeedSequence).

    Regression for the old ``seed + 1`` derivation, which left the
    reservoir unseeded for ``seed=None`` and collided streams for
    adjacent integer seeds.
    """

    def _run(self, seed, data, inserts=400, feedbacks=20):
        sample = data[:128]
        model = SelfTuningKDE(
            sample,
            row_source=ArrayRowSource(data),
            population_size=len(data),
            seed=seed,
        )
        query = Box([-0.5, -0.5], [0.5, 0.5])
        for row in data[:inserts]:
            model.on_insert(row)
        for _ in range(feedbacks):
            model.feedback(query, 0.4)
        return model

    def test_same_seed_bit_identical_replay(self, data):
        a = self._run(1234, data)
        b = self._run(1234, data)
        assert np.array_equal(a.estimator.sample, b.estimator.sample)
        assert np.array_equal(a.bandwidth, b.bandwidth)
        assert a.reservoir.accepted == b.reservoir.accepted

    def test_different_seeds_diverge(self, data):
        a = self._run(1234, data)
        b = self._run(1235, data)
        # Adjacent seeds must give independent reservoir streams; with
        # 400 insert decisions an identical acceptance trace would be
        # astronomically unlikely.
        assert not np.array_equal(a.estimator.sample, b.estimator.sample)

    def test_seed_sequence_accepted(self, data):
        seq = np.random.SeedSequence(42)
        a = self._run(seq, data)
        b = self._run(np.random.SeedSequence(42), data)
        assert np.array_equal(a.estimator.sample, b.estimator.sample)

    def test_unseeded_reservoir_is_random(self, data):
        # seed=None must still seed the reservoir (from OS entropy):
        # two unseeded models should make different acceptance choices.
        a = self._run(None, data)
        b = self._run(None, data)
        assert not np.array_equal(a.estimator.sample, b.estimator.sample)

    def test_rng_streams_round_trip_through_state(self, data):
        model = self._run(77, data, inserts=100, feedbacks=5)
        state = model.snapshot()
        revived = SelfTuningKDE.from_state(
            state, row_source=ArrayRowSource(data)
        )
        # Replay the *same* insert stream on both: reservoir decisions
        # (and hence samples) must stay in lockstep, which requires the
        # restored RNG to continue the original bit stream.
        for row in data[200:600]:
            model.on_insert(row)
            revived.on_insert(row)
        assert np.array_equal(model.estimator.sample, revived.estimator.sample)
        assert model.reservoir.accepted == revived.reservoir.accepted
