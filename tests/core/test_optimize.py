"""Tests for batch bandwidth optimisation (problem (5), Section 3.4)."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.gradient import QueryFeedback
from repro.core.optimize import (
    BandwidthOptimizer,
    OptimizationResult,
    optimize_bandwidth,
)

from ..conftest import random_data_centered_queries, true_selectivity


@pytest.fixture
def training_workload(gaussian_data, rng):
    queries = random_data_centered_queries(gaussian_data, 40, rng)
    return [
        QueryFeedback(q, true_selectivity(gaussian_data, q)) for q in queries
    ]


class TestValidation:
    def test_rejects_zero_starts(self):
        with pytest.raises(ValueError):
            BandwidthOptimizer(starts=0)

    def test_rejects_small_bounds_factor(self):
        with pytest.raises(ValueError):
            BandwidthOptimizer(bounds_factor=1.0)

    def test_rejects_empty_workload(self, small_sample):
        with pytest.raises(ValueError):
            BandwidthOptimizer().optimize(small_sample, [])


class TestOptimization:
    def test_improves_over_scott(self, small_sample, training_workload):
        result = optimize_bandwidth(
            small_sample, training_workload, starts=4, seed=0
        )
        assert result.loss <= result.initial_loss
        assert result.improvement >= 0.0

    def test_never_worse_than_initial(self, small_sample, training_workload):
        # Even with a single start and almost no iterations the result must
        # not regress below the Scott initialisation.
        optimizer = BandwidthOptimizer(
            starts=1, global_maxiter=1, local_maxiter=1, seed=0
        )
        result = optimizer.optimize(small_sample, training_workload)
        assert result.loss <= result.initial_loss

    def test_substantial_improvement_on_skewed_data(self, rng):
        # Bimodal data where Scott's normal assumption badly oversmooths.
        cluster_a = rng.normal(loc=0.0, scale=0.05, size=(5000, 2))
        cluster_b = rng.normal(loc=5.0, scale=0.05, size=(5000, 2))
        data = np.vstack([cluster_a, cluster_b])
        sample = data[rng.choice(len(data), size=256, replace=False)]
        queries = random_data_centered_queries(
            data, 30, rng, width_range=(0.05, 0.3)
        )
        workload = [
            QueryFeedback(q, true_selectivity(data, q)) for q in queries
        ]
        result = optimize_bandwidth(sample, workload, starts=4, seed=1)
        assert result.improvement > 0.3

    def test_deterministic_given_seed(self, small_sample, training_workload):
        a = optimize_bandwidth(small_sample, training_workload, starts=4, seed=9)
        b = optimize_bandwidth(small_sample, training_workload, starts=4, seed=9)
        np.testing.assert_array_equal(a.bandwidth, b.bandwidth)
        assert a.loss == b.loss

    def test_positive_bandwidth(self, small_sample, training_workload):
        result = optimize_bandwidth(
            small_sample, training_workload, starts=3, seed=2
        )
        assert (result.bandwidth > 0).all()

    def test_respects_initial_bandwidth(self, small_sample, training_workload):
        initial = scott_bandwidth(small_sample) * 2.0
        optimizer = BandwidthOptimizer(starts=1, seed=0)
        result = optimizer.optimize(
            small_sample, training_workload, initial_bandwidth=initial
        )
        est = KernelDensityEstimator(small_sample, initial)
        expected_initial = np.mean(
            [
                float(
                    (est.selectivity(fb.query) - fb.selectivity) ** 2
                )
                for fb in training_workload
            ]
        )
        assert result.initial_loss == pytest.approx(expected_initial, rel=1e-9)

    def test_result_metadata(self, small_sample, training_workload):
        result = optimize_bandwidth(
            small_sample, training_workload, starts=4, seed=3
        )
        assert isinstance(result, OptimizationResult)
        assert result.starts == 4
        assert len(result.start_losses) == 4
        assert result.evaluations > 4

    @pytest.mark.parametrize("loss", ["absolute", "squared_q"])
    def test_other_losses(self, small_sample, training_workload, loss):
        result = optimize_bandwidth(
            small_sample, training_workload, loss=loss, starts=2, seed=4
        )
        assert result.loss <= result.initial_loss

    def test_reduces_test_error_vs_scott(self, gaussian_data, rng):
        """End-to-end: optimised bandwidth generalises to held-out queries."""
        sample = gaussian_data[
            rng.choice(len(gaussian_data), size=512, replace=False)
        ]
        train = random_data_centered_queries(gaussian_data, 50, rng)
        test = random_data_centered_queries(gaussian_data, 50, rng)
        workload = [
            QueryFeedback(q, true_selectivity(gaussian_data, q)) for q in train
        ]
        result = optimize_bandwidth(sample, workload, starts=4, seed=5)

        def mean_abs_error(bandwidth):
            est = KernelDensityEstimator(sample, bandwidth)
            return np.mean(
                [
                    abs(est.selectivity(q) - true_selectivity(gaussian_data, q))
                    for q in test
                ]
            )

        scott_error = mean_abs_error(scott_bandwidth(sample))
        optimized_error = mean_abs_error(result.bandwidth)
        # Allow a little generalisation slack, but the optimised bandwidth
        # should be at least competitive with Scott out of sample.
        assert optimized_error <= scott_error * 1.25


class TestRestartPoints:
    def test_count(self, small_sample):
        optimizer = BandwidthOptimizer(starts=5, seed=0)
        log_ref = np.zeros(3)
        points = optimizer._restart_points(
            log_ref, log_ref - 2, log_ref + 2, np.random.default_rng(0)
        )
        assert len(points) == 5
        np.testing.assert_array_equal(points[0], log_ref)

    def test_within_bounds(self):
        optimizer = BandwidthOptimizer(starts=10, seed=0)
        log_ref = np.zeros(4)
        lower, upper = log_ref - 3, log_ref + 3
        points = optimizer._restart_points(
            log_ref, lower, upper, np.random.default_rng(1)
        )
        for p in points:
            assert (p >= lower).all() and (p <= upper).all()

    def test_single_start(self):
        optimizer = BandwidthOptimizer(starts=1, seed=0)
        points = optimizer._restart_points(
            np.zeros(2), -np.ones(2), np.ones(2), np.random.default_rng(2)
        )
        assert len(points) == 1
