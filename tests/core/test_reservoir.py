"""Tests for reservoir sampling (Algorithm R and the skip-based variant)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.reservoir import ReservoirSampler, SkipReservoirSampler

SAMPLERS = [ReservoirSampler, SkipReservoirSampler]


@pytest.mark.parametrize("cls", SAMPLERS, ids=lambda c: c.__name__)
class TestCommonBehaviour:
    def test_validation(self, cls):
        with pytest.raises(ValueError):
            cls(0)
        with pytest.raises(ValueError):
            cls(5, population_size=-1)

    def test_fill_phase_sequential(self, cls):
        sampler = cls(4, population_size=0, seed=0)
        slots = [sampler.on_insert() for _ in range(4)]
        assert slots == [0, 1, 2, 3]
        assert sampler.accepted == 4

    def test_population_counter(self, cls):
        sampler = cls(4, population_size=10, seed=0)
        for _ in range(25):
            sampler.on_insert()
        assert sampler.population_size == 35

    def test_slots_in_range(self, cls):
        sampler = cls(8, population_size=8, seed=1)
        for _ in range(1000):
            slot = sampler.on_insert()
            if slot is not None:
                assert 0 <= slot < 8

    def test_acceptance_rate_declines(self, cls):
        sampler = cls(10, population_size=10, seed=2)
        accepted_early = 0
        for _ in range(200):
            if sampler.on_insert() is not None:
                accepted_early += 1
        accepted_late = 0
        for _ in range(200):
            if sampler.on_insert() is not None:
                accepted_late += 1
        assert accepted_early >= accepted_late

    def test_expected_acceptance_count(self, cls):
        """E[acceptances] = sum over inserts of s/n; check within 4 sigma."""
        s, inserts = 20, 2000
        expected = sum(s / n for n in range(s + 1, s + inserts + 1))
        variance = sum(
            (s / n) * (1 - s / n) for n in range(s + 1, s + inserts + 1)
        )
        counts = []
        for seed in range(10):
            sampler = cls(s, population_size=s, seed=seed)
            count = sum(
                1 for _ in range(inserts) if sampler.on_insert() is not None
            )
            counts.append(count)
        mean = np.mean(counts)
        sigma = np.sqrt(variance / len(counts))
        assert abs(mean - expected) < 4 * sigma


@pytest.mark.parametrize("cls", SAMPLERS, ids=lambda c: c.__name__)
def test_uniformity_chi_squared(cls):
    """Every stream element ends up in the final sample equally often.

    Run many independent streams of length ``n`` through a reservoir of
    size ``s``, track which elements survive, and chi-squared test the
    survival counts against the uniform expectation ``trials * s / n``.
    """
    s, n, trials = 8, 40, 800
    survival = np.zeros(n, dtype=int)
    for seed in range(trials):
        sampler = cls(s, population_size=0, seed=seed)
        reservoir = [-1] * s
        for element in range(n):
            slot = sampler.on_insert()
            if slot is not None:
                reservoir[slot] = element
        for element in reservoir:
            survival[element] += 1
    expected = trials * s / n
    chi2 = float(((survival - expected) ** 2 / expected).sum())
    # dof = n - 1; reject only at the 0.1% level to keep the test stable.
    critical = stats.chi2.ppf(0.999, df=n - 1)
    assert chi2 < critical, f"chi2={chi2:.1f} critical={critical:.1f}"


class TestSkipSamplerAgainstAlgorithmR:
    def test_same_acceptance_distribution(self):
        """Skip-based acceptance counts match Algorithm R statistically."""
        s, inserts, trials = 16, 500, 60
        counts_r, counts_skip = [], []
        for seed in range(trials):
            r = ReservoirSampler(s, population_size=s, seed=seed)
            z = SkipReservoirSampler(s, population_size=s, seed=seed + 10_000)
            counts_r.append(
                sum(1 for _ in range(inserts) if r.on_insert() is not None)
            )
            counts_skip.append(
                sum(1 for _ in range(inserts) if z.on_insert() is not None)
            )
        # Two-sample t-test should not reject equality of means.
        result = stats.ttest_ind(counts_r, counts_skip)
        assert result.pvalue > 0.001
