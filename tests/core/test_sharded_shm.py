"""Shared-memory lifecycle regressions for the sharded executor."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.backends import sharded
from repro.core.backends.sharded import (
    START_METHOD_ENV,
    ShardedSampleExecutor,
)


def test_ensure_unlinks_segment_when_pool_startup_fails(monkeypatch):
    """A bad start method must not leak the freshly created segment.

    The segment is created before the pool; if the pool constructor (or
    the start-method lookup) raises, ``ensure`` has to close *and unlink*
    the segment — otherwise it survives in /dev/shm until reboot.
    """
    created = []
    real_cls = shared_memory.SharedMemory

    class RecordingSharedMemory(real_cls):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            if kwargs.get("create"):
                created.append(self.name)

    monkeypatch.setattr(
        sharded.shared_memory, "SharedMemory", RecordingSharedMemory
    )
    monkeypatch.setenv(START_METHOD_ENV, "definitely-not-a-start-method")

    executor = ShardedSampleExecutor(shards=2)
    sample = np.zeros((64, 3), dtype=np.float64)
    with pytest.raises(ValueError, match=START_METHOD_ENV):
        executor.ensure(sample)

    assert len(created) == 1, "exactly one segment should have been created"
    # The failed ensure() left no state behind ...
    assert executor._shm is None
    assert executor._view is None
    assert executor._pool is None
    # ... and the segment itself is gone from the system.
    with pytest.raises(FileNotFoundError):
        real_cls(name=created[0])


def test_ensure_recovers_after_failed_startup(monkeypatch):
    """The executor stays usable once the bad configuration is fixed."""
    monkeypatch.setenv(START_METHOD_ENV, "definitely-not-a-start-method")
    executor = ShardedSampleExecutor(shards=2, max_workers=1)
    sample = np.arange(12, dtype=np.float64).reshape(4, 3)
    with pytest.raises(ValueError):
        executor.ensure(sample)
    monkeypatch.delenv(START_METHOD_ENV)
    try:
        executor.ensure(sample)
        assert executor._view is not None
        np.testing.assert_array_equal(executor._view, sample)
    finally:
        executor.close()
