"""ModelState: snapshot/restore, on-disk round trips, corrupt rejection."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.model import SelfTuningKDE
from repro.core.state import (
    FORMAT_VERSION,
    CheckpointError,
    ModelState,
    generator_from_state,
    generator_state,
)
from repro.device.kde_device import DeviceKDE
from repro.device.runtime import DeviceContext
from repro.device.specs import GTX460
from repro.geometry import Box


def make_sample(rows=200, dims=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dims))


def make_query(dims=3):
    return Box(low=np.full(dims, -1.0), high=np.linspace(0.5, 1.5, dims))


def make_queries(dims=3, count=8, seed=5):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(count, dims))
    widths = rng.uniform(0.2, 2.0, size=(count, dims))
    return [
        Box(low=c - w / 2, high=c + w / 2) for c, w in zip(centers, widths)
    ]


# ---------------------------------------------------------------------------
# ModelState container semantics
# ---------------------------------------------------------------------------
class TestModelStateContainer:
    def test_arrays_are_frozen_copies(self):
        sample = make_sample()
        bandwidth = scott_bandwidth(sample)
        state = ModelState(
            kind="kde",
            sample=sample,
            bandwidth=bandwidth,
            kernels=("gaussian",) * 3,
        )
        with pytest.raises(ValueError):
            state.sample[0, 0] = 99.0
        with pytest.raises(ValueError):
            state.bandwidth[0] = 99.0
        # Mutating the originals cannot reach through the snapshot.
        sample[0, 0] = 123.0
        assert state.sample[0, 0] != 123.0

    def test_validates_shapes_and_kinds(self):
        sample = make_sample()
        bandwidth = scott_bandwidth(sample)
        with pytest.raises(ValueError):
            ModelState(
                kind="nonsense",
                sample=sample,
                bandwidth=bandwidth,
                kernels=("gaussian",) * 3,
            )
        with pytest.raises(ValueError):
            ModelState(
                kind="kde",
                sample=sample,
                bandwidth=bandwidth[:2],
                kernels=("gaussian",) * 3,
            )
        with pytest.raises(ValueError):
            ModelState(
                kind="kde",
                sample=sample,
                bandwidth=bandwidth,
                kernels=("gaussian",) * 2,
            )

    def test_equals(self):
        sample = make_sample()
        bandwidth = scott_bandwidth(sample)
        kw = dict(
            kind="kde",
            sample=sample,
            bandwidth=bandwidth,
            kernels=("gaussian",) * 3,
        )
        a, b = ModelState(**kw), ModelState(**kw)
        assert a.equals(b)
        c = ModelState(**{**kw, "bandwidth": bandwidth * 2})
        assert not a.equals(c)


# ---------------------------------------------------------------------------
# Bit-identical snapshot -> mutate -> restore and save -> load, per family
# ---------------------------------------------------------------------------
class TestKdeRoundTrip:
    def test_snapshot_mutate_restore(self):
        sample = make_sample()
        kde = KernelDensityEstimator(sample, scott_bandwidth(sample))
        query = make_query()
        before = kde.selectivity(query)
        state = kde.snapshot()
        kde.bandwidth = np.full(3, 7.0)
        assert kde.selectivity(query) != before
        kde.restore(state)
        assert kde.selectivity(query) == before

    def test_save_load_estimates_identical(self, tmp_path):
        sample = make_sample()
        kde = KernelDensityEstimator(sample, scott_bandwidth(sample))
        path = os.path.join(tmp_path, "kde.ckpt")
        kde.snapshot().save(path)
        revived = KernelDensityEstimator.from_state(ModelState.load(path))
        for query in make_queries():
            assert revived.selectivity(query) == kde.selectivity(query)

    def test_restore_bumps_epochs_past_both_lineages(self):
        sample = make_sample()
        kde = KernelDensityEstimator(sample, scott_bandwidth(sample))
        state = kde.snapshot()
        kde.bandwidth = np.full(3, 2.0)
        epoch_before = kde.bandwidth_epoch
        kde.restore(state)
        assert kde.bandwidth_epoch > epoch_before
        assert kde.bandwidth_epoch > state.bandwidth_epoch


class TestSelfTuningRoundTrip:
    def test_feedback_trajectory_bit_identical_after_save_load(self, tmp_path):
        sample = make_sample()
        queries = make_queries()
        model = SelfTuningKDE(sample, seed=42)
        for query in queries:
            model.feedback(query, 0.3)
        path = os.path.join(tmp_path, "st.ckpt")
        model.snapshot().save(path)
        revived = SelfTuningKDE.from_state(ModelState.load(path))

        # Not just the estimate at snapshot time: the *continuation* is
        # bit-identical, which requires tuner accumulators, karma,
        # reservoir counters and RNG state to all round-trip.
        for query in queries * 3:
            assert revived.estimate(query) == model.estimate(query)
            model.feedback(query, 0.25)
            revived.feedback(query, 0.25)
        assert np.array_equal(model.bandwidth, revived.bandwidth)

    def test_restore_resets_pending_and_checks_kind(self):
        sample = make_sample()
        model = SelfTuningKDE(sample, seed=1)
        state = model.snapshot()
        assert state.kind == "self_tuning"
        kde_state = KernelDensityEstimator(
            sample, scott_bandwidth(sample)
        ).snapshot()
        with pytest.raises(ValueError):
            model.restore(kde_state)


class TestDeviceRoundTrip:
    def _make(self, sample):
        return DeviceKDE(sample, context=DeviceContext(GTX460))

    def test_feedback_trajectory_bit_identical_after_save_load(self, tmp_path):
        sample = make_sample()
        queries = make_queries()
        device = self._make(sample)
        for query in queries[:4]:
            device.estimate(query)
            device.feedback(query, 0.3)
        path = os.path.join(tmp_path, "dev.ckpt")
        device.snapshot().save(path)
        revived = DeviceKDE.from_state(
            ModelState.load(path), context=DeviceContext(GTX460)
        )
        for query in queries:
            assert revived.estimate(query) == device.estimate(query)
            device.feedback(query, 0.2)
            revived.feedback(query, 0.2)
        assert np.array_equal(device.bandwidth, revived.bandwidth)

    def test_restore_in_place(self):
        sample = make_sample()
        query = make_query()
        device = self._make(sample)
        device.estimate(query)
        device.feedback(query, 0.4)
        state = device.snapshot()
        before = device.estimate(query)
        device.feedback(query, 0.1)
        device.feedback(query, 0.9)
        device.restore(state)
        assert device.estimate(query) == before

    def test_precision_preserved(self):
        sample = make_sample()
        state = self._make(sample).snapshot()
        assert state.sample.dtype == np.float32
        assert state.config["precision"] == "float32"


# ---------------------------------------------------------------------------
# Serialisation format: rejection of corrupt / truncated / future files
# ---------------------------------------------------------------------------
class TestFormatRejection:
    @pytest.fixture
    def saved(self, tmp_path):
        sample = make_sample(rows=64)
        model = SelfTuningKDE(sample, seed=3)
        model.feedback(make_query(), 0.5)
        path = os.path.join(tmp_path, "model.ckpt")
        model.snapshot().save(path)
        return path

    def test_truncated_file_rejected(self, saved):
        blob = open(saved, "rb").read()
        for cut in (0, 4, len(blob) // 2, len(blob) - 3):
            with open(saved, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(CheckpointError):
                ModelState.load(saved)

    def test_checksum_mismatch_rejected(self, saved):
        blob = bytearray(open(saved, "rb").read())
        blob[-1] ^= 0x01  # flip one payload bit
        with open(saved, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            ModelState.load(saved)

    def test_bad_magic_rejected(self, saved):
        blob = bytearray(open(saved, "rb").read())
        blob[0] ^= 0xFF
        with pytest.raises(CheckpointError, match="magic"):
            ModelState.from_bytes(bytes(blob))

    def test_future_version_rejected(self, saved):
        state = ModelState.load(saved)
        import json

        from repro.core import state as state_module

        blob = state.to_bytes()
        header_length = int.from_bytes(
            blob[len(state_module.MAGIC):len(state_module.MAGIC) + 8],
            "little",
        )
        header_start = len(state_module.MAGIC) + 8
        header = json.loads(blob[header_start:header_start + header_length])
        header["format_version"] = FORMAT_VERSION + 1
        raw = json.dumps(header).encode("utf-8")
        forged = (
            state_module.MAGIC
            + len(raw).to_bytes(8, "little")
            + raw
            + blob[header_start + header_length:]
        )
        with pytest.raises(CheckpointError, match="version"):
            ModelState.from_bytes(forged)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            ModelState.load(os.path.join(tmp_path, "nope.ckpt"))

    def test_atomic_save_leaves_no_tmp_files(self, saved, tmp_path):
        names = os.listdir(tmp_path)
        assert names == ["model.ckpt"]


# ---------------------------------------------------------------------------
# RNG state helpers
# ---------------------------------------------------------------------------
class TestGeneratorState:
    def test_round_trip_continues_stream(self):
        rng = np.random.default_rng(123)
        rng.random(10)
        revived = generator_from_state(generator_state(rng))
        assert np.array_equal(rng.random(100), revived.random(100))

    def test_state_is_json_serialisable(self):
        import json

        rng = np.random.default_rng(7)
        encoded = json.dumps(generator_state(rng))
        revived = generator_from_state(json.loads(encoded))
        assert rng.random() == revived.random()


# ---------------------------------------------------------------------------
# Property test: serialisation is lossless for arbitrary tuned models
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    feedbacks=st.integers(min_value=0, max_value=6),
    dims=st.integers(min_value=1, max_value=4),
)
def test_bytes_round_trip_lossless(seed, feedbacks, dims):
    rng = np.random.default_rng(seed)
    sample = rng.normal(size=(50, dims))
    model = SelfTuningKDE(sample, seed=seed)
    query = Box(low=np.full(dims, -0.5), high=np.full(dims, 0.8))
    for _ in range(feedbacks):
        model.feedback(query, 0.4)
    state = model.snapshot()
    revived_state = ModelState.from_bytes(state.to_bytes())
    assert state.equals(revived_state)
    revived = SelfTuningKDE.from_state(revived_state)
    assert revived.estimate(query) == model.estimate(query)
    model.feedback(query, 0.6)
    revived.feedback(query, 0.6)
    assert np.array_equal(model.bandwidth, revived.bandwidth)
