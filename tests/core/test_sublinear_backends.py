"""Sublinear backends: registry, ε-equivalence, invalidation, obs wiring.

The correctness contract of the ``grid`` and ``hashing`` backends is
looser than the 1e-12 budget of the exact backends — they trade bounded
error for per-query cost that no longer scales with the sample — but it
is still a *contract*:

* **grid**: tight equivalence in 1-D (the per-dimension CDF tables
  represent a 1-D estimator almost exactly), ε-equivalence in multi-D
  on independent samples (the product-of-marginals factorisation), and
  *exact* zeros for degenerate (zero-width) query dimensions;
* **hashing**: ε-relative equivalence everywhere (the near stratum is
  exact; the far stratum is certified by Hoeffding sampling), exactness
  for compactly supported kernels, and observed sublinearity — fewer
  kernel-evaluated rows than the full scan on selective queries;
* both: derived state (CDF tables, bucket index) is keyed on the
  estimator's epochs and eagerly invalidated by the ``bandwidth``
  setter, ``replace_rows`` and ``restore()``, so no stale table is ever
  consulted — mirroring the cache-invalidation suite in
  ``tests/core/test_backends.py``.
"""

import numpy as np
import pytest

from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.core.backends import (
    GridBackend,
    HashingBackend,
    available_backends,
    get_backend,
)
from repro.geometry import Box, QueryBatch
from repro.obs import MetricsRegistry


@pytest.fixture
def rng():
    return np.random.default_rng(19)


def _make(sample, backend, **kwargs):
    return KernelDensityEstimator(
        sample, scott_bandwidth(sample), backend=backend, **kwargs
    )


def _independent_batch(rng, dimensions, queries=40):
    lows = rng.uniform(-2.5, 1.0, size=(queries, dimensions))
    highs = lows + rng.uniform(0.1, 2.0, size=(queries, dimensions))
    return QueryBatch(lows, highs)


# ----------------------------------------------------------------------
# Registry (satellite: error message lists registered names)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_sublinear_backends_registered(self):
        assert {"grid", "hashing"} <= set(available_backends())
        assert isinstance(get_backend("grid"), GridBackend)
        assert isinstance(get_backend("hashing"), HashingBackend)

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("no-such-backend")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message
        # The chained KeyError is suppressed: the ValueError *is* the
        # diagnosis, not a symptom of a dict lookup.
        assert excinfo.value.__cause__ is None

    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (GridBackend, dict(grid_size=1)),
            (GridBackend, dict(padding=0.0)),
            (HashingBackend, dict(epsilon=0.0)),
            (HashingBackend, dict(epsilon=1.0)),
            (HashingBackend, dict(delta=0.0)),
            (HashingBackend, dict(tail_radius=0.0)),
            (HashingBackend, dict(cells_per_dim=0)),
            (HashingBackend, dict(exact_threshold=-1)),
            (HashingBackend, dict(selectivity_floor=0.0)),
        ],
    )
    def test_parameter_validation(self, factory, kwargs):
        with pytest.raises(ValueError):
            factory(**kwargs)


# ----------------------------------------------------------------------
# Grid: equivalence within ε
# ----------------------------------------------------------------------
class TestGridEquivalence:
    @pytest.mark.parametrize("kernel", ["gaussian", "epanechnikov"])
    @pytest.mark.parametrize("bandwidth_scale", [0.5, 1.0, 2.0])
    def test_one_dimensional_is_tight(self, rng, kernel, bandwidth_scale):
        """In 1-D the CDF table is the estimator: only O(step) error."""
        sample = rng.normal(size=(5000, 1))
        bandwidth = scott_bandwidth(sample) * bandwidth_scale
        reference = KernelDensityEstimator(sample, bandwidth, kernel=kernel)
        grid = KernelDensityEstimator(
            sample, bandwidth, kernel=kernel, backend=GridBackend()
        )
        batch = _independent_batch(rng, 1, queries=60)
        np.testing.assert_allclose(
            grid.selectivity_batch(batch),
            reference.selectivity_batch(batch),
            rtol=0,
            atol=5e-3,
        )

    @pytest.mark.parametrize("kernel", ["gaussian", "epanechnikov"])
    def test_multid_independent_within_epsilon(self, rng, kernel):
        """On independent dimensions the product form holds to ~1/sqrt(s)."""
        sample = rng.normal(size=(20_000, 3))
        reference = _make(sample, None, kernel=kernel)
        grid = _make(sample, GridBackend(), kernel=kernel)
        batch = _independent_batch(rng, 3)
        np.testing.assert_allclose(
            grid.selectivity_batch(batch),
            reference.selectivity_batch(batch),
            rtol=0,
            atol=0.02,
        )

    def test_zero_width_dimension_is_exactly_zero(self, rng):
        """Degenerate boxes: bit-for-bit zero, matching the reference."""
        sample = rng.normal(size=(3000, 3))
        grid = _make(sample, GridBackend())
        reference = _make(sample, None)
        boxes = [
            Box((0.0, -9.0, -9.0), (0.0, 9.0, 9.0)),  # zero-width dim
            Box((0.5, 0.5, 0.5), (0.5, 0.5, 0.5)),  # point query
        ]
        batch = QueryBatch.from_boxes(boxes)
        estimates = grid.selectivity_batch(batch)
        assert np.all(estimates == 0.0)
        assert np.all(reference.selectivity_batch(batch) == 0.0)

    def test_full_range_box_is_one(self, rng):
        sample = rng.normal(size=(3000, 2))
        grid = _make(sample, GridBackend())
        batch = QueryBatch.from_boxes(
            [Box((-100.0, -100.0), (100.0, 100.0))]
        )
        np.testing.assert_allclose(
            grid.selectivity_batch(batch), [1.0], rtol=0, atol=1e-9
        )

    def test_no_rows_touched_and_tuning_paths_exact(self, rng):
        """Selectivity touches zero rows; gradients stay reference-exact."""
        sample = rng.normal(size=(2000, 2))
        grid = _make(sample, GridBackend())
        reference = _make(sample, None)
        batch = _independent_batch(rng, 2, queries=10)
        grid.selectivity_batch(batch)
        assert grid.backend.stats.rows_touched == 0
        np.testing.assert_allclose(
            grid.selectivity_gradient_batch(batch),
            reference.selectivity_gradient_batch(batch),
            rtol=0,
            atol=1e-12,
        )


# ----------------------------------------------------------------------
# Grid: table invalidation (satellite: mirror the cache suite)
# ----------------------------------------------------------------------
class TestGridInvalidation:
    def test_tables_keyed_on_epochs(self, rng):
        sample = rng.normal(size=(1500, 2))
        grid = _make(sample, GridBackend())
        batch = _independent_batch(rng, 2, queries=5)
        assert grid.backend.table_epochs is None
        grid.selectivity_batch(batch)
        assert grid.backend.table_epochs == (
            grid.bandwidth_epoch,
            grid.sample_epoch,
        )
        assert grid.backend.stats.builds == 1
        grid.selectivity_batch(batch)
        assert grid.backend.stats.builds == 1  # reused, not rebuilt

    def test_bandwidth_setter_invalidates(self, rng):
        sample = rng.normal(size=(1500, 2))
        grid = _make(sample, GridBackend())
        batch = _independent_batch(rng, 2, queries=8)
        before = grid.selectivity_batch(batch).copy()
        grid.bandwidth = grid.bandwidth * 3.0
        assert grid.backend.table_epochs is None  # eagerly dropped
        after = grid.selectivity_batch(batch)
        assert grid.backend.stats.builds == 2
        assert grid.backend.table_epochs == (
            grid.bandwidth_epoch,
            grid.sample_epoch,
        )
        # The rebuilt tables must track the *new* bandwidth: a freshly
        # built grid estimator over the same state agrees exactly.
        fresh = KernelDensityEstimator(
            sample, grid.bandwidth, backend=GridBackend()
        )
        np.testing.assert_allclose(
            after, fresh.selectivity_batch(batch), rtol=0, atol=1e-12
        )
        assert not np.allclose(before, after)

    def test_replace_rows_invalidates(self, rng):
        sample = rng.normal(size=(1500, 2))
        grid = _make(sample, GridBackend())
        batch = _independent_batch(rng, 2, queries=8)
        grid.selectivity_batch(batch)
        indices = np.arange(700)
        replacement = rng.normal(loc=4.0, size=(700, 2))
        grid.replace_rows(indices, replacement)
        assert grid.backend.table_epochs is None
        after = grid.selectivity_batch(batch)
        # No stale table consulted: a freshly built grid estimator over
        # the mutated sample agrees exactly.
        fresh = KernelDensityEstimator(
            grid.sample.copy(), grid.bandwidth, backend=GridBackend()
        )
        np.testing.assert_allclose(
            after, fresh.selectivity_batch(batch), rtol=0, atol=1e-12
        )

    def test_restore_invalidates(self, rng):
        """restore() bumps epochs past both lineages; tables follow."""
        sample = rng.normal(size=(1500, 2))
        grid = _make(sample, GridBackend())
        batch = _independent_batch(rng, 2, queries=8)
        state = grid.snapshot()
        before = grid.selectivity_batch(batch).copy()
        grid.bandwidth = grid.bandwidth * 3.0
        grid.selectivity_batch(batch)
        grid.restore(state)
        assert grid.backend.table_epochs is None
        restored = grid.selectivity_batch(batch)
        assert grid.backend.table_epochs == (
            grid.bandwidth_epoch,
            grid.sample_epoch,
        )
        np.testing.assert_allclose(restored, before, rtol=0, atol=1e-12)

    def test_invalidation_counters(self, rng):
        sample = rng.normal(size=(800, 2))
        grid = _make(sample, GridBackend())
        grid.bandwidth = grid.bandwidth * 1.1
        grid.replace_rows(np.arange(10), rng.normal(size=(10, 2)))
        assert grid.backend.stats.invalidations["bandwidth"] >= 1
        assert grid.backend.stats.invalidations["sample"] >= 1


# ----------------------------------------------------------------------
# Hashing: ε-equivalence, sublinearity, determinism
# ----------------------------------------------------------------------
class TestHashingEquivalence:
    def test_epanechnikov_is_near_exact(self, rng):
        """Compact support: the far bound is exactly 0 past the radius."""
        sample = rng.normal(size=(10_000, 2))
        reference = _make(sample, None, kernel="epanechnikov")
        hashing = _make(
            sample,
            HashingBackend(exact_threshold=64),
            kernel="epanechnikov",
        )
        batch = _independent_batch(rng, 2)
        np.testing.assert_allclose(
            hashing.selectivity_batch(batch),
            reference.selectivity_batch(batch),
            rtol=0,
            atol=1e-10,
        )

    @pytest.mark.parametrize("bandwidth_scale", [0.5, 1.0, 2.0])
    def test_gaussian_within_relative_epsilon(self, rng, bandwidth_scale):
        sample = rng.normal(size=(12_000, 2))
        bandwidth = scott_bandwidth(sample) * bandwidth_scale
        epsilon = 0.05
        reference = KernelDensityEstimator(sample, bandwidth)
        hashing = KernelDensityEstimator(
            sample,
            bandwidth,
            backend=HashingBackend(epsilon=epsilon, exact_threshold=64),
        )
        batch = _independent_batch(rng, 2)
        expected = reference.selectivity_batch(batch)
        got = hashing.selectivity_batch(batch)
        floor = hashing.backend.selectivity_floor
        # The certificate budget is epsilon * max(S_near, floor); allow
        # a small slack over it for the certificate's delta tail.
        tolerance = 2.0 * epsilon * np.maximum(expected, floor)
        assert np.all(np.abs(got - expected) <= tolerance)

    def test_degenerate_boxes_exact_zero(self, rng):
        sample = rng.normal(size=(9000, 2))
        hashing = _make(sample, HashingBackend(exact_threshold=64))
        batch = QueryBatch.from_boxes(
            [
                Box((0.0, -9.0), (0.0, 9.0)),
                Box((0.25, 0.25), (0.25, 0.25)),
            ]
        )
        assert np.all(hashing.selectivity_batch(batch) == 0.0)

    def test_selective_queries_touch_fewer_rows(self, rng):
        """Observed sublinearity: rows touched << s * queries."""
        sample = rng.normal(size=(30_000, 2))
        hashing = _make(sample, HashingBackend(exact_threshold=64))
        lows = rng.uniform(-2.0, 2.0, size=(20, 2))
        batch = QueryBatch(lows, lows + 0.05)
        hashing.selectivity_batch(batch)
        stats = hashing.backend.stats
        assert stats.queries_evaluated == 20
        assert stats.rows_touched_per_query < sample.shape[0] / 2

    def test_small_sample_falls_back_to_exact(self, rng):
        sample = rng.normal(size=(500, 2))
        reference = _make(sample, None)
        hashing = _make(sample, HashingBackend(exact_threshold=4096))
        batch = _independent_batch(rng, 2)
        np.testing.assert_allclose(
            hashing.selectivity_batch(batch),
            reference.selectivity_batch(batch),
            rtol=0,
            atol=1e-12,
        )
        # The fallback is the full scan — and reports itself as one.
        assert (
            hashing.backend.stats.rows_touched
            == len(batch) * sample.shape[0]
        )

    def test_seeded_runs_are_deterministic(self, rng):
        sample = rng.normal(size=(12_000, 2))
        batch = _independent_batch(rng, 2)
        results = []
        for _ in range(2):
            kde = _make(
                sample, HashingBackend(seed=123, exact_threshold=64)
            )
            results.append(kde.selectivity_batch(batch))
        np.testing.assert_array_equal(results[0], results[1])

    def test_index_rebuilt_on_sample_change_only(self, rng):
        sample = rng.normal(size=(9000, 2))
        hashing = _make(sample, HashingBackend(exact_threshold=64))
        batch = _independent_batch(rng, 2, queries=5)
        hashing.selectivity_batch(batch)
        assert hashing.backend.index_epoch == hashing.sample_epoch
        builds = hashing.backend.stats.builds
        # Bandwidth moves do not touch the bucket geometry...
        hashing.bandwidth = hashing.bandwidth * 1.5
        hashing.selectivity_batch(batch)
        assert hashing.backend.stats.builds == builds
        # ...but sample rewrites rebuild it.
        hashing.replace_rows(np.arange(100), rng.normal(size=(100, 2)))
        assert hashing.backend.index_epoch is None
        hashing.selectivity_batch(batch)
        assert hashing.backend.stats.builds == builds + 1
        assert hashing.backend.index_epoch == hashing.sample_epoch


# ----------------------------------------------------------------------
# Observability wiring
# ----------------------------------------------------------------------
class TestObsWiring:
    def _snapshot_names(self, registry):
        snapshot = registry.snapshot()
        keys = []
        for kind in ("counters", "gauges", "histograms"):
            keys.extend(snapshot.get(kind, {}))
        # Strip the "{backend=...}" label suffix down to the bare name.
        return {key.split("{", 1)[0] for key in keys}

    def test_grid_emits_build_and_table_metrics(self, rng):
        registry = MetricsRegistry()
        sample = rng.normal(size=(2000, 2))
        kde = KernelDensityEstimator(
            sample,
            scott_bandwidth(sample),
            backend=GridBackend(),
            metrics=registry,
        )
        kde.selectivity_batch(_independent_batch(rng, 2, queries=5))
        names = self._snapshot_names(registry)
        assert "backend.build_seconds" in names
        assert "backend.table_bytes" in names
        assert "backend.builds" in names
        assert "backend.rows_touched" in names

    def test_hashing_emits_rows_touched(self, rng):
        registry = MetricsRegistry()
        sample = rng.normal(size=(9000, 2))
        kde = KernelDensityEstimator(
            sample,
            scott_bandwidth(sample),
            backend=HashingBackend(exact_threshold=64),
            metrics=registry,
        )
        kde.selectivity_batch(_independent_batch(rng, 2, queries=5))
        names = self._snapshot_names(registry)
        assert "backend.build_seconds" in names
        assert "backend.rows_touched" in names

    def test_stats_as_dict_includes_rows_and_builds(self, rng):
        sample = rng.normal(size=(2000, 2))
        kde = _make(sample, GridBackend())
        kde.selectivity_batch(_independent_batch(rng, 2, queries=5))
        payload = kde.backend.stats.as_dict()
        assert payload["builds"] == 1
        assert payload["rows_touched"] == 0
        assert payload["rows_touched_per_query"] == 0.0
