"""Tests for the variable-bandwidth (sample-point) KDE extension."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.gradient import QueryFeedback
from repro.core.optimize import BandwidthOptimizer
from repro.core.variable import (
    VariableKernelDensityEstimator,
    abramson_factors,
)

from ..conftest import random_data_centered_queries, true_selectivity


@pytest.fixture
def spiky_data(rng):
    """A dense spike plus a wide diffuse background — the regime where
    variable bandwidths shine."""
    spike = rng.normal(loc=0.0, scale=0.02, size=(8000, 2))
    background = rng.normal(loc=0.0, scale=2.0, size=(8000, 2))
    return np.vstack([spike, background])


class TestAbramsonFactors:
    def test_shape_and_positivity(self, small_sample):
        factors = abramson_factors(small_sample)
        assert factors.shape == (small_sample.shape[0],)
        assert (factors > 0).all()

    def test_geometric_mean_one(self, small_sample):
        factors = abramson_factors(small_sample)
        assert float(np.exp(np.mean(np.log(factors)))) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_alpha_zero_gives_fixed_model(self, small_sample):
        factors = abramson_factors(small_sample, alpha=0.0)
        np.testing.assert_allclose(factors, 1.0)

    def test_dense_points_get_small_factors(self, spiky_data, rng):
        sample = spiky_data[rng.choice(len(spiky_data), 512, replace=False)]
        factors = abramson_factors(sample)
        in_spike = np.linalg.norm(sample, axis=1) < 0.1
        if in_spike.any() and (~in_spike).any():
            assert factors[in_spike].mean() < factors[~in_spike].mean()

    def test_alpha_validation(self, small_sample):
        with pytest.raises(ValueError):
            abramson_factors(small_sample, alpha=1.5)


class TestVariableEstimator:
    def test_factor_one_matches_fixed(self, small_sample):
        h = scott_bandwidth(small_sample)
        fixed = KernelDensityEstimator(small_sample, h)
        variable = VariableKernelDensityEstimator(
            small_sample, h, local_factors=np.ones(small_sample.shape[0])
        )
        box = Box([-1.0, -0.5, 0.0], [1.0, 0.5, 2.0])
        assert variable.selectivity(box) == pytest.approx(
            fixed.selectivity(box), abs=1e-14
        )
        np.testing.assert_allclose(
            variable.selectivity_gradient(box),
            fixed.selectivity_gradient(box),
            atol=1e-14,
        )

    def test_validation(self, small_sample):
        h = scott_bandwidth(small_sample)
        with pytest.raises(ValueError):
            VariableKernelDensityEstimator(
                small_sample, h, local_factors=np.ones(3)
            )
        with pytest.raises(ValueError):
            VariableKernelDensityEstimator(
                small_sample, h,
                local_factors=np.full(small_sample.shape[0], -1.0),
            )

    def test_estimates_in_unit_interval(self, spiky_data, rng):
        sample = spiky_data[rng.choice(len(spiky_data), 256, replace=False)]
        est = VariableKernelDensityEstimator(
            sample, scott_bandwidth(sample)
        )
        for _ in range(10):
            center = spiky_data[rng.integers(len(spiky_data))]
            box = Box(center - 0.5, center + 0.5)
            assert 0.0 <= est.selectivity(box) <= 1.0
        everything = Box([-1e6, -1e6], [1e6, 1e6])
        assert est.selectivity(everything) == pytest.approx(1.0, abs=1e-9)

    def test_gradient_matches_finite_differences(self, spiky_data, rng):
        sample = spiky_data[rng.choice(len(spiky_data), 128, replace=False)]
        est = VariableKernelDensityEstimator(sample, scott_bandwidth(sample))
        box = Box([-0.5, -0.5], [0.5, 0.5])
        grad = est.selectivity_gradient(box)
        h0 = est.bandwidth
        eps = 1e-6
        for i in range(2):
            hp, hm = h0.copy(), h0.copy()
            hp[i] += eps
            hm[i] -= eps
            est.bandwidth = hp
            up = est.selectivity(box)
            est.bandwidth = hm
            down = est.selectivity(box)
            est.bandwidth = h0
            assert grad[i] == pytest.approx(
                (up - down) / (2 * eps), rel=1e-4, abs=1e-9
            )

    def test_beats_fixed_on_spiky_data(self, spiky_data, rng):
        """The regime variable KDE targets: very different local scales."""
        sample = spiky_data[rng.choice(len(spiky_data), 512, replace=False)]
        h = scott_bandwidth(sample)
        fixed = KernelDensityEstimator(sample, h)
        variable = VariableKernelDensityEstimator(sample, h)
        queries = random_data_centered_queries(
            spiky_data, 60, rng, width_range=(0.02, 0.4)
        )
        fixed_error = np.mean(
            [
                abs(fixed.selectivity(q) - true_selectivity(spiky_data, q))
                for q in queries
            ]
        )
        variable_error = np.mean(
            [
                abs(variable.selectivity(q) - true_selectivity(spiky_data, q))
                for q in queries
            ]
        )
        assert variable_error < fixed_error

    def test_density_integrates_to_one(self, spiky_data, rng):
        sample = spiky_data[rng.choice(len(spiky_data), 128, replace=False)]
        est = VariableKernelDensityEstimator(sample, scott_bandwidth(sample))
        box = Box([-8.0, -8.0], [8.0, 8.0])
        points = box.sample_uniform(30_000, rng)
        integral = float(est.density(points).mean()) * box.volume()
        assert integral == pytest.approx(est.selectivity(box), rel=0.1)

    def test_works_with_batch_optimizer(self, spiky_data, rng):
        """The paper's portability conjecture: the optimiser accepts a
        variable model transparently (through the factory hook)."""
        sample = spiky_data[rng.choice(len(spiky_data), 256, replace=False)]
        queries = random_data_centered_queries(
            spiky_data, 30, rng, width_range=(0.05, 0.5)
        )
        workload = [
            QueryFeedback(q, true_selectivity(spiky_data, q)) for q in queries
        ]
        factors = abramson_factors(sample)

        # Optimise the global bandwidth of the variable model directly:
        # the gradient machinery only needs the estimator interface.
        from repro.core.gradient import workload_loss_and_gradient

        est = VariableKernelDensityEstimator(
            sample, scott_bandwidth(sample), local_factors=factors
        )
        initial_loss, gradient = workload_loss_and_gradient(
            est, workload, "squared"
        )
        assert np.all(np.isfinite(gradient))
        # One plain gradient step in log space must not increase the loss
        # (tiny step, exact gradient).
        est.bandwidth = est.bandwidth * np.exp(
            -1e-3 * np.sign(gradient * est.bandwidth)
        )
        stepped_loss, _ = workload_loss_and_gradient(est, workload, "squared")
        assert stepped_loss <= initial_loss + 1e-9

    def test_replace_points_resets_factor(self, spiky_data, rng):
        sample = spiky_data[rng.choice(len(spiky_data), 128, replace=False)]
        est = VariableKernelDensityEstimator(sample, scott_bandwidth(sample))
        est.replace_points(np.array([0]), np.array([[5.0, 5.0]]))
        assert est.local_factors[0] == 1.0

    def test_refresh_factors(self, spiky_data, rng):
        sample = spiky_data[rng.choice(len(spiky_data), 128, replace=False)]
        est = VariableKernelDensityEstimator(sample, scott_bandwidth(sample))
        est.replace_points(np.arange(10), sample[:10] + 0.01)
        est.refresh_factors()
        assert float(
            np.exp(np.mean(np.log(est.local_factors)))
        ) == pytest.approx(1.0, abs=1e-9)
