"""Tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.datasets import (
    DATASET_NAMES,
    gaussian_clusters,
    gunopulos_synthetic,
    load_dataset,
    project_dimensions,
    uniform_noise,
)


class TestGunopulosSynthetic:
    def test_shape_and_domain(self):
        data = gunopulos_synthetic(rows=5000, dimensions=4, seed=0)
        assert data.shape == (5000, 4)
        assert Box.unit(4).contains_points(data).all()

    def test_deterministic(self):
        a = gunopulos_synthetic(rows=1000, dimensions=3, seed=7)
        b = gunopulos_synthetic(rows=1000, dimensions=3, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_clustered_structure(self):
        """Clustered data is far from uniform: the densest small cell holds
        much more than the uniform share."""
        data = gunopulos_synthetic(
            rows=20_000, dimensions=2, clusters=3, noise_fraction=0.05, seed=1
        )
        # 10x10 grid: uniform data would put ~1% in each cell.
        hist, _, _ = np.histogram2d(
            data[:, 0], data[:, 1], bins=10, range=[[0, 1], [0, 1]]
        )
        assert hist.max() / data.shape[0] > 0.05

    def test_pure_noise(self):
        data = gunopulos_synthetic(
            rows=5000, dimensions=2, noise_fraction=1.0, seed=2
        )
        hist, _, _ = np.histogram2d(
            data[:, 0], data[:, 1], bins=4, range=[[0, 1], [0, 1]]
        )
        # Uniform: every 1/16 cell near 312 points.
        assert hist.min() > 200

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rows=0),
            dict(noise_fraction=1.5),
            dict(clusters=0),
            dict(cluster_extent=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            gunopulos_synthetic(rows=kwargs.pop("rows", 100), **kwargs)


class TestGaussianClusters:
    def test_even_split(self):
        centers = [np.zeros(2), np.full(2, 10.0)]
        data = gaussian_clusters(1001, 2, centers, scale=0.1, seed=0)
        assert data.shape == (1001, 2)
        near_first = Box.from_center(centers[0], [2.0, 2.0]).contains_points(data)
        assert 450 <= int(near_first.sum()) <= 551

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_clusters(0, 2, [np.zeros(2)])
        with pytest.raises(ValueError):
            gaussian_clusters(10, 2, [])
        with pytest.raises(ValueError):
            gaussian_clusters(10, 2, [np.zeros(3)])

    def test_uniform_noise(self, rng):
        box = Box([0.0, 5.0], [1.0, 6.0])
        points = uniform_noise(100, box, rng)
        assert box.contains_points(points).all()
        assert uniform_noise(0, box, rng).shape == (0, 2)
        with pytest.raises(ValueError):
            uniform_noise(-1, box, rng)


class TestStandins:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_shapes(self, name):
        data = load_dataset(name, rows=2000, seed=0)
        assert data.shape[0] == 2000
        assert data.shape[1] >= 8
        assert np.isfinite(data).all()

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic(self, name):
        a = load_dataset(name, rows=500, seed=3)
        b = load_dataset(name, rows=500, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_default_cardinalities(self):
        # Spot-check the defaults match the paper without generating the
        # giant ones.
        assert load_dataset("bike", seed=0).shape == (17_379, 16)
        assert load_dataset("protein", seed=0).shape == (45_730, 9)

    @pytest.mark.parametrize("name", ["bike", "forest", "power", "protein"])
    def test_correlated_attributes(self, name):
        """Every stand-in must have substantial inter-attribute
        correlation — the property that breaks AVI estimators."""
        data = load_dataset(name, rows=5000, seed=0)
        corr = np.corrcoef(data, rowvar=False)
        np.fill_diagonal(corr, 0.0)
        corr = np.nan_to_num(corr)
        assert np.abs(corr).max() > 0.4

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imdb")


class TestProjection:
    def test_dimension_count(self, rng):
        data = load_dataset("bike", rows=1000, seed=0)
        projected = project_dimensions(data, 3, rng)
        assert projected.shape == (1000, 3)

    def test_columns_from_original(self, rng):
        data = rng.normal(size=(100, 5)) * np.arange(1, 6)
        projected = project_dimensions(data, 2, np.random.default_rng(0))
        for j in range(2):
            matches = [
                np.allclose(projected[:, j], data[:, k]) for k in range(5)
            ]
            assert any(matches)

    def test_prefers_informative_columns(self):
        rng = np.random.default_rng(0)
        data = np.column_stack([np.ones(100), rng.normal(size=(100, 3))])
        for seed in range(5):
            projected = project_dimensions(
                data, 3, np.random.default_rng(seed)
            )
            assert (projected.std(axis=0) > 0).all()

    def test_too_many_dimensions(self, rng):
        with pytest.raises(ValueError):
            project_dimensions(np.zeros((10, 2)), 3, rng)

    def test_load_with_projection(self):
        data = load_dataset("forest", dimensions=3, rows=1000, seed=0)
        assert data.shape == (1000, 3)
