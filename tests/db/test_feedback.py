"""Tests for the estimate/execute/feedback loop glue."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.baselines import AdaptiveKDE, HeuristicKDE
from repro.db import FeedbackLoop, Table


@pytest.fixture
def table(rng):
    return Table(2, initial_rows=rng.normal(size=(5000, 2)))


class TestFeedbackLoop:
    def test_run_query_records_observation(self, table, rng):
        sample = table.analyze(256, rng)
        loop = FeedbackLoop(table, HeuristicKDE(sample))
        box = Box([-1.0, -1.0], [1.0, 1.0])
        observation = loop.run_query(box)
        assert observation.actual == table.selectivity(box)
        assert 0.0 <= observation.estimated <= 1.0
        assert len(loop.observations) == 1

    def test_error_helpers(self, table, rng):
        sample = table.analyze(256, rng)
        loop = FeedbackLoop(table, HeuristicKDE(sample))
        queries = [
            Box(c - 0.5, c + 0.5)
            for c in rng.normal(size=(20, 2))
        ]
        loop.run_workload(queries)
        trace = loop.error_trace()
        assert trace.shape == (20,)
        assert loop.mean_absolute_error() == pytest.approx(float(trace.mean()))
        assert loop.mean_absolute_error(last=5) == pytest.approx(
            float(trace[-5:].mean())
        )

    def test_error_helpers_require_observations(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        with pytest.raises(ValueError):
            loop.mean_absolute_error()

    def test_adaptive_estimator_learns_through_loop(self, table, rng):
        sample = table.analyze(256, rng)
        estimator = AdaptiveKDE(
            sample, row_source=table, population_size=len(table), seed=0
        )
        loop = FeedbackLoop(table, estimator).attach()
        queries = [
            Box(c - 0.4, c + 0.4)
            for c in table.rows()[rng.integers(len(table), size=200)]
        ]
        loop.run_workload(queries)
        early = float(loop.error_trace()[:50].mean())
        late = float(loop.error_trace()[-50:].mean())
        assert late <= early * 1.1  # no drift upward; usually improves

    def test_bridge_forwards_inserts(self, table, rng):
        sample = table.analyze(64, rng)
        estimator = AdaptiveKDE(
            sample, row_source=table, population_size=len(table), seed=0
        )
        loop = FeedbackLoop(table, estimator).attach()
        population = estimator.model.reservoir.population_size
        table.insert([0.0, 0.0])
        assert estimator.model.reservoir.population_size == population + 1
        table.delete_in(Box([-0.001, -0.001], [0.001, 0.001]))
        loop.detach()
        table.insert([1.0, 1.0])
        # After detach, no more forwarding.
        assert estimator.model.reservoir.population_size <= population + 1

    def test_bridge_tolerates_static_estimators(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        loop.attach()
        table.insert([0.0, 0.0])  # must not raise
        table.delete_in(Box([-0.001, -0.001], [0.001, 0.001]))

    def test_attach_idempotent(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        loop.attach().attach()
        loop.detach()
        loop.detach()  # second detach is a no-op


class TestRunWorkloadBatched:
    def test_records_same_observations_as_loop(self, table, rng):
        sample = table.analyze(256, rng)
        queries = [Box(c - 0.5, c + 0.5) for c in rng.normal(size=(20, 2))]
        looped = FeedbackLoop(table, HeuristicKDE(sample))
        looped.run_workload(queries)
        batched = FeedbackLoop(table, HeuristicKDE(sample))
        observations = batched.run_workload_batched(queries)
        assert len(observations) == 20
        assert batched.observations == observations
        for a, b in zip(batched.observations, looped.observations):
            assert a.query == b.query
            assert a.actual == b.actual
            # Static estimator: identical estimates, batched or not.
            assert a.estimated == pytest.approx(b.estimated, abs=1e-12)

    def test_adaptive_estimates_precede_feedback(self, table, rng):
        sample = table.analyze(256, rng)
        estimator = AdaptiveKDE(
            sample, row_source=table, population_size=len(table), seed=0
        )
        loop = FeedbackLoop(table, estimator).attach()
        queries = [
            Box(c - 0.4, c + 0.4)
            for c in table.rows()[rng.integers(len(table), size=40)]
        ]
        before = estimator.model.bandwidth
        observations = loop.run_workload_batched(queries)
        assert len(observations) == 40
        # Throughput mode: all estimates were produced against the
        # pre-feedback model.
        reference = AdaptiveKDE(
            sample, row_source=table, population_size=len(table), seed=0
        )
        np.testing.assert_allclose(
            [o.estimated for o in observations],
            reference.estimate_many(queries),
            atol=1e-12,
        )
        # ... but the feedback still tuned the bandwidth afterwards.
        assert not np.array_equal(estimator.model.bandwidth, before)

    def test_empty_workload(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        assert loop.run_workload_batched([]) == []
        assert loop.observations == []

    def test_core_self_tuning_model_uses_batch_api(self, table, rng):
        # The core model exposes estimate_batch/feedback_batch rather
        # than the baselines' *_many names; the loop must find them.
        from repro.core import SelfTuningKDE

        model = SelfTuningKDE(
            table.analyze(256, rng),
            row_source=table,
            population_size=len(table),
        )
        queries = [Box(c - 0.4, c + 0.4) for c in rng.normal(size=(10, 2))]
        before = model.feedback_count
        observations = FeedbackLoop(table, model).run_workload_batched(
            queries
        )
        assert len(observations) == 10
        assert model.feedback_count == before + 10

    def test_plain_estimator_falls_back_to_loop(self, table, rng):
        class PlainEstimator:
            def __init__(self):
                self.feedback_calls = 0

            def estimate(self, query):
                return 0.5

            def feedback(self, query, actual):
                self.feedback_calls += 1

        estimator = PlainEstimator()
        queries = [Box(c - 0.4, c + 0.4) for c in rng.normal(size=(5, 2))]
        observations = FeedbackLoop(table, estimator).run_workload_batched(
            queries
        )
        assert [o.estimated for o in observations] == [0.5] * 5
        assert estimator.feedback_calls == 5


class TestAttachDetachIdempotency:
    """Regression: attach/detach must be idempotent and re-entrant.

    A double attach used to be guarded only by a racy check-then-act;
    a duplicated bridge would forward every insert twice, silently
    corrupting reservoir counters.
    """

    def test_repeated_attach_registers_one_bridge(self, table, rng):
        estimator = AdaptiveKDE(
            sample=table.analyze(64, rng),
            row_source=table,
            population_size=len(table),
            seed=0,
        )
        loop = FeedbackLoop(table, estimator)
        for _ in range(5):
            loop.attach()
        assert loop.attached
        population = estimator.model.reservoir.population_size
        table.insert([0.0, 0.0])
        # One event per insert, not five.
        assert estimator.model.reservoir.population_size == population + 1

    def test_detach_without_attach_is_noop(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        loop.detach()
        loop.detach()
        assert not loop.attached

    def test_attach_detach_cycle_restores_clean_state(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        for _ in range(3):
            loop.attach()
            assert loop.attached
            loop.detach()
            assert not loop.attached
        table.insert([0.0, 0.0])  # no listener left behind

    def test_concurrent_attach_registers_one_bridge(self, table, rng):
        import threading

        estimator = AdaptiveKDE(
            sample=table.analyze(64, rng),
            row_source=table,
            population_size=len(table),
            seed=0,
        )
        loop = FeedbackLoop(table, estimator)
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            loop.attach()

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        population = estimator.model.reservoir.population_size
        table.insert([0.0, 0.0])
        assert estimator.model.reservoir.population_size == population + 1
        loop.detach()
        assert not loop.attached
