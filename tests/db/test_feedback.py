"""Tests for the estimate/execute/feedback loop glue."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.baselines import AdaptiveKDE, HeuristicKDE
from repro.db import FeedbackLoop, Table


@pytest.fixture
def table(rng):
    return Table(2, initial_rows=rng.normal(size=(5000, 2)))


class TestFeedbackLoop:
    def test_run_query_records_observation(self, table, rng):
        sample = table.analyze(256, rng)
        loop = FeedbackLoop(table, HeuristicKDE(sample))
        box = Box([-1.0, -1.0], [1.0, 1.0])
        observation = loop.run_query(box)
        assert observation.actual == table.selectivity(box)
        assert 0.0 <= observation.estimated <= 1.0
        assert len(loop.observations) == 1

    def test_error_helpers(self, table, rng):
        sample = table.analyze(256, rng)
        loop = FeedbackLoop(table, HeuristicKDE(sample))
        queries = [
            Box(c - 0.5, c + 0.5)
            for c in rng.normal(size=(20, 2))
        ]
        loop.run_workload(queries)
        trace = loop.error_trace()
        assert trace.shape == (20,)
        assert loop.mean_absolute_error() == pytest.approx(float(trace.mean()))
        assert loop.mean_absolute_error(last=5) == pytest.approx(
            float(trace[-5:].mean())
        )

    def test_error_helpers_require_observations(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        with pytest.raises(ValueError):
            loop.mean_absolute_error()

    def test_adaptive_estimator_learns_through_loop(self, table, rng):
        sample = table.analyze(256, rng)
        estimator = AdaptiveKDE(
            sample, row_source=table, population_size=len(table), seed=0
        )
        loop = FeedbackLoop(table, estimator).attach()
        queries = [
            Box(c - 0.4, c + 0.4)
            for c in table.rows()[rng.integers(len(table), size=200)]
        ]
        loop.run_workload(queries)
        early = float(loop.error_trace()[:50].mean())
        late = float(loop.error_trace()[-50:].mean())
        assert late <= early * 1.1  # no drift upward; usually improves

    def test_bridge_forwards_inserts(self, table, rng):
        sample = table.analyze(64, rng)
        estimator = AdaptiveKDE(
            sample, row_source=table, population_size=len(table), seed=0
        )
        loop = FeedbackLoop(table, estimator).attach()
        population = estimator.model.reservoir.population_size
        table.insert([0.0, 0.0])
        assert estimator.model.reservoir.population_size == population + 1
        table.delete_in(Box([-0.001, -0.001], [0.001, 0.001]))
        loop.detach()
        table.insert([1.0, 1.0])
        # After detach, no more forwarding.
        assert estimator.model.reservoir.population_size <= population + 1

    def test_bridge_tolerates_static_estimators(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        loop.attach()
        table.insert([0.0, 0.0])  # must not raise
        table.delete_in(Box([-0.001, -0.001], [0.001, 0.001]))

    def test_attach_idempotent(self, table, rng):
        loop = FeedbackLoop(table, HeuristicKDE(table.analyze(64, rng)))
        loop.attach().attach()
        loop.detach()
        loop.detach()  # second detach is a no-op
