"""Tests for the miniature cost-based join-order optimizer."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.baselines import HeuristicKDE, SampleCountEstimator
from repro.core.model import SelfTuningKDE
from repro.db import Table
from repro.db.join import pk_fk_join_sample_stats
from repro.db.optimizer import (
    EstimatedCostModel,
    JoinQuery,
    RegistryCostModel,
    TrueCostModel,
    optimize_join_order,
    plan_quality_ratio,
)
from repro.serve import ModelKey, ModelRegistry


@pytest.fixture
def star_schema(rng):
    """A small star: big fact table, two dimensions of very different
    post-predicate sizes, so join order matters a lot."""
    keys_a = np.arange(5000.0)
    keys_b = np.arange(2000.0)
    fact = Table(
        3,
        initial_rows=np.column_stack(
            [
                rng.integers(0, 5000, 20_000).astype(float),
                rng.integers(0, 2000, 20_000).astype(float),
                rng.normal(size=20_000),
            ]
        ),
    )
    dim_a = Table(
        2, initial_rows=np.column_stack([keys_a, rng.normal(size=5000)])
    )
    dim_b = Table(
        2, initial_rows=np.column_stack([keys_b, rng.normal(size=2000)])
    )
    query = JoinQuery(
        tables={"fact": fact, "dim_a": dim_a, "dim_b": dim_b},
        predicates={
            # Selective predicate on dim_a (few rows survive), loose on
            # dim_b.
            "dim_a": Box([0.0, -3.0], [10.0, 3.0]),
            "dim_b": Box([0.0, -5.0], [1999.0, 5.0]),
        },
        joins=[("fact", 0, "dim_a", 0), ("fact", 1, "dim_b", 0)],
    )
    return query


class TestJoinQuery:
    def test_validation(self, rng):
        table = Table(1, initial_rows=rng.normal(size=(10, 1)))
        with pytest.raises(ValueError):
            JoinQuery(tables={"only": table})
        other = Table(1, initial_rows=rng.normal(size=(10, 1)))
        with pytest.raises(ValueError):
            JoinQuery(
                tables={"a": table, "b": other},
                predicates={"c": Box([0.0], [1.0])},
            )
        with pytest.raises(ValueError):
            JoinQuery(
                tables={"a": table, "b": other},
                joins=[("a", 5, "b", 0)],
            )

    def test_self_join_edge_rejected(self, rng):
        """Regression: an intra-table edge used to be accepted silently
        and then priced as a cross product by the left-deep enumerator."""
        a = Table(2, initial_rows=rng.normal(size=(10, 2)))
        b = Table(1, initial_rows=rng.normal(size=(10, 1)))
        with pytest.raises(ValueError, match="self-join"):
            JoinQuery(
                tables={"a": a, "b": b},
                joins=[("a", 0, "a", 1)],
            )

    def test_join_edges_between(self, star_schema):
        edges = star_schema.join_edges_between(frozenset({"fact"}), "dim_a")
        assert len(edges) == 1
        assert star_schema.join_edges_between(frozenset({"dim_b"}), "dim_a") == []


class TestTrueCostModel:
    def test_base_cardinality(self, star_schema):
        model = TrueCostModel()
        assert model.base_cardinality(star_schema, "fact") == 20_000
        survivors = model.base_cardinality(star_schema, "dim_a")
        assert 0 < survivors <= 11

    def test_join_selectivity(self, star_schema):
        model = TrueCostModel()
        selectivity = model.join_selectivity(
            star_schema, ("fact", 0, "dim_a", 0)
        )
        # Each fact row matches exactly one of the 5000 dim_a keys.
        assert selectivity == pytest.approx(1.0 / 5000.0, rel=0.01)


class TestOptimization:
    def test_optimal_joins_selective_dimension_first(self, star_schema):
        plan = optimize_join_order(star_schema, TrueCostModel())
        # Joining the highly selective dim_a early shrinks intermediates.
        assert plan.order.index("dim_a") < plan.order.index("dim_b")

    def test_plan_cost_positive(self, star_schema):
        plan = optimize_join_order(star_schema, TrueCostModel())
        assert plan.cost > 0
        assert len(plan.nodes) == 3

    def test_estimated_model_with_good_estimators(self, star_schema, rng):
        estimators = {
            name: SampleCountEstimator(table.rows())
            for name, table in star_schema.tables.items()
        }
        joins = {
            ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
            ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
        }
        model = EstimatedCostModel(estimators, joins)
        plan = optimize_join_order(star_schema, model)
        assert plan_quality_ratio(star_schema, plan) == pytest.approx(
            1.0, abs=0.2
        )

    def test_bad_estimates_cause_bad_plans(self, star_schema):
        """Wildly wrong base cardinalities flip the join order, and the
        plan-quality ratio exposes the regression."""

        class InvertedEstimator:
            def __init__(self, selectivity):
                self._selectivity = selectivity

            def estimate(self, query):
                return self._selectivity

        estimators = {
            "fact": InvertedEstimator(1.0),
            # Claim dim_a's selective predicate keeps everything and
            # dim_b's loose predicate keeps nothing.
            "dim_a": InvertedEstimator(1.0),
            "dim_b": InvertedEstimator(1e-4),
        }
        joins = {
            ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
            ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
        }
        plan = optimize_join_order(
            star_schema, EstimatedCostModel(estimators, joins)
        )
        assert plan.order.index("dim_b") < plan.order.index("dim_a")
        assert plan_quality_ratio(star_schema, plan) > 1.5

    def test_kde_estimates_give_near_optimal_plans(self, star_schema, rng):
        """End-to-end: KDE models per table feed the optimizer."""
        estimators = {
            name: HeuristicKDE(table.analyze(min(512, len(table)), rng))
            for name, table in star_schema.tables.items()
        }
        joins = {
            ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
            ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
        }
        plan = optimize_join_order(
            star_schema, EstimatedCostModel(estimators, joins)
        )
        assert plan_quality_ratio(star_schema, plan) < 1.5

    def test_missing_estimator_raises(self, star_schema):
        model = EstimatedCostModel({}, {})
        with pytest.raises(KeyError):
            optimize_join_order(star_schema, model)

    def test_flipped_edge_lookup(self, star_schema):
        estimators = {
            name: SampleCountEstimator(table.rows())
            for name, table in star_schema.tables.items()
        }
        joins = {
            # Stored flipped relative to the query's edges.
            ("dim_a", 0, "fact", 0): 1.0 / 5000.0,
            ("dim_b", 0, "fact", 1): 1.0 / 2000.0,
        }
        plan = optimize_join_order(
            star_schema, EstimatedCostModel(estimators, joins)
        )
        assert plan.cost > 0

    def test_cross_product_without_edge(self, rng):
        a = Table(1, initial_rows=rng.normal(size=(100, 1)))
        b = Table(1, initial_rows=rng.normal(size=(10, 1)))
        query = JoinQuery(tables={"a": a, "b": b})
        plan = optimize_join_order(query, TrueCostModel())
        assert plan.cost == pytest.approx(1000.0)

    def test_exhaustive_table_cap(self, rng):
        """The factorial sweep stays capped at 8 tables; the DP default
        handles the same query without complaint."""
        tables = {
            f"t{i}": Table(1, initial_rows=rng.normal(size=(5, 1)))
            for i in range(9)
        }
        query = JoinQuery(tables=tables)
        with pytest.raises(ValueError, match="exhaustive"):
            optimize_join_order(query, TrueCostModel(), method="exhaustive")
        plan = optimize_join_order(query, TrueCostModel())
        assert len(plan.order) == 9

    def test_unknown_method_rejected(self, star_schema):
        with pytest.raises(ValueError, match="method"):
            optimize_join_order(star_schema, TrueCostModel(), method="greedy")


class TestDPEnumeration:
    def _chain_query(self, rng, n, rows=40):
        """A chain join t0 - t1 - ... - t(n-1) with varied predicates."""
        tables = {}
        for i in range(n):
            keys = np.arange(float(rows))
            rng.shuffle(keys)
            tables[f"t{i}"] = Table(
                2,
                initial_rows=np.column_stack(
                    [keys, rng.normal(size=rows)]
                ),
            )
        predicates = {
            f"t{i}": Box([-1.0, -3.0], [rows * (0.2 + 0.6 * rng.random()), 3.0])
            for i in range(0, n, 2)
        }
        joins = [(f"t{i}", 0, f"t{i + 1}", 0) for i in range(n - 1)]
        return JoinQuery(tables=tables, predicates=predicates, joins=joins)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_dp_matches_exhaustive(self, rng, n):
        """The subset DP returns the identical plan (order AND cost) as
        the factorial sweep, including lexicographic tie-breaks."""
        query = self._chain_query(rng, n)
        truth = TrueCostModel()
        dp = optimize_join_order(query, truth, method="dp")
        exhaustive = optimize_join_order(query, truth, method="exhaustive")
        assert dp.order == exhaustive.order
        assert dp.cost == pytest.approx(exhaustive.cost)

    def test_dp_ties_break_lexicographically(self, rng):
        """Symmetric tables make every order cost the same; both methods
        must return the sorted-first permutation."""
        rows = rng.normal(size=(10, 1))
        tables = {name: Table(1, initial_rows=rows) for name in "dcba"}
        query = JoinQuery(tables=tables)
        truth = TrueCostModel()
        dp = optimize_join_order(query, truth, method="dp")
        exhaustive = optimize_join_order(query, truth, method="exhaustive")
        assert dp.order == exhaustive.order == ("a", "b", "c", "d")

    def test_dp_handles_ten_plus_tables(self, rng):
        """10! permutations would be 3.6M plans; the DP prices 2^10
        subsets and still picks a join order that puts selective
        tables early."""
        query = self._chain_query(rng, 11, rows=20)
        plan = optimize_join_order(query, TrueCostModel())
        assert len(plan.order) == 11
        assert plan.cost >= 0.0

    def test_dp_cap(self, rng):
        rows = rng.normal(size=(2, 1))
        tables = {f"t{i:02d}": Table(1, initial_rows=rows) for i in range(19)}
        query = JoinQuery(tables=tables)
        with pytest.raises(ValueError, match="DP"):
            optimize_join_order(query, TrueCostModel())


class TestRegistryCostModel:
    @pytest.fixture
    def keyed_query(self, rng):
        """Fact-dimension pair with integer join keys and predicates."""
        fact_rows = np.column_stack(
            [
                rng.integers(0, 100, 2_000).astype(float),
                rng.normal(size=2_000),
            ]
        )
        dim_rows = np.column_stack(
            [np.arange(100.0), rng.normal(size=100)]
        )
        fact = Table(2, ["k", "v"], initial_rows=fact_rows)
        dim = Table(2, ["k", "w"], initial_rows=dim_rows)
        return JoinQuery(
            tables={"fact": fact, "dim": dim},
            predicates={
                "fact": Box([-1.0, -1.0], [101.0, 1.0]),
                "dim": Box([-1.0, -0.5], [101.0, 0.5]),
            },
            joins=[("fact", 0, "dim", 0)],
        )

    def _register_tables(self, registry, query, rng):
        for name, table in query.tables.items():
            model = SelfTuningKDE(
                table.rows()[
                    rng.choice(len(table), min(256, len(table)), replace=False)
                ],
                seed=7,
            )
            registry.register(name, tuple(table.column_names), model)

    def test_served_snapshot_base_rung(self, keyed_query, rng):
        registry = ModelRegistry()
        self._register_tables(registry, keyed_query, rng)
        model = RegistryCostModel(registry)
        fact_rows = model.base_cardinality(keyed_query, "fact")
        assert 0 < fact_rows <= 2_000
        rungs = model.rung_counts()
        assert rungs.get("served-snapshot") == 1

    def test_frontend_batch_overrides_snapshot(self, keyed_query, rng):
        registry = ModelRegistry()
        self._register_tables(registry, keyed_query, rng)
        model = RegistryCostModel(
            registry, base_selectivities={"fact": 0.25}
        )
        assert model.base_cardinality(keyed_query, "fact") == pytest.approx(
            500.0
        )
        assert model.rung_counts() == {"frontend-batch": 1}

    def test_static_estimator_fallback(self, keyed_query):
        estimators = {
            name: SampleCountEstimator(table.rows())
            for name, table in keyed_query.tables.items()
        }
        model = RegistryCostModel(estimators=estimators)
        value = model.base_cardinality(keyed_query, "dim")
        assert 0 < value <= 100
        assert model.rung_counts() == {"static-estimator": 1}

    def test_unpriceable_predicate_raises(self, keyed_query):
        model = RegistryCostModel()
        with pytest.raises(KeyError):
            model.base_cardinality(keyed_query, "fact")

    def test_joint_integral_edge_rung(self, keyed_query, rng):
        """With both sides served, the edge prices through the Gaussian
        joint integral at roughly the true 1/|dim| selectivity."""
        registry = ModelRegistry()
        self._register_tables(registry, keyed_query, rng)
        model = RegistryCostModel(registry, key_width=1.0)
        selectivity = model.join_selectivity(
            keyed_query, ("fact", 0, "dim", 0)
        )
        assert selectivity == pytest.approx(1.0 / 100.0, rel=1.0)
        assert model.rung_counts() == {"joint-integral": 1}
        # Cached: pricing the flipped orientation re-uses the record.
        again = model.join_selectivity(keyed_query, ("fact", 0, "dim", 0))
        assert again == selectivity
        assert model.rung_counts() == {"joint-integral": 1}

    def test_independence_edge_fallback(self, keyed_query):
        model = RegistryCostModel(key_width=1.0)
        selectivity = model.join_selectivity(
            keyed_query, ("fact", 0, "dim", 0)
        )
        assert 0.0 < selectivity < 1.0
        assert model.rung_counts() == {"independence": 1}

    def test_join_sample_edge_rung(self, keyed_query, rng):
        """A registered join-sample model with cardinality evidence wins
        over the joint-integral and independence rungs."""
        fact = keyed_query.tables["fact"]
        dim = keyed_query.tables["dim"]
        stats = pk_fk_join_sample_stats(
            fact, dim, 0, 0, 512, rng=np.random.default_rng(3)
        )
        key = ModelKey.for_join_sample(
            [("fact", "k", "dim", "k")],
            ("fact.k", "fact.v", "dim.k", "dim.w"),
        )
        registry = ModelRegistry()
        registry.register(key, SelfTuningKDE(stats.rows, seed=5))
        model = RegistryCostModel(
            registry, join_rows={key: stats.estimated_join_rows}
        )
        selectivity = model.join_selectivity(
            keyed_query, ("fact", 0, "dim", 0)
        )
        # True edge selectivity is 1/100 (every fact key matches once).
        assert selectivity == pytest.approx(1.0 / 100.0, rel=0.5)
        assert "join-sample" in model.rung_counts()

    def test_join_sample_rows_by_edge_tuple(self, keyed_query, rng):
        """join_rows may be keyed by the query's raw edge tuple too."""
        fact = keyed_query.tables["fact"]
        dim = keyed_query.tables["dim"]
        stats = pk_fk_join_sample_stats(
            fact, dim, 0, 0, 256, rng=np.random.default_rng(4)
        )
        key = ModelKey.for_join_sample(
            [("fact", "k", "dim", "k")],
            ("fact.k", "fact.v", "dim.k", "dim.w"),
        )
        registry = ModelRegistry()
        registry.register(key, SelfTuningKDE(stats.rows, seed=5))
        model = RegistryCostModel(
            registry,
            join_rows={("fact", 0, "dim", 0): stats.estimated_join_rows},
        )
        selectivity = model.join_selectivity(
            keyed_query, ("fact", 0, "dim", 0)
        )
        assert selectivity > 0.0
        assert "join-sample" in model.rung_counts()

    def test_full_plan_records_every_node(self, keyed_query, rng):
        registry = ModelRegistry()
        self._register_tables(registry, keyed_query, rng)
        model = RegistryCostModel(registry)
        plan = optimize_join_order(keyed_query, model)
        assert len(plan.order) == 2
        subjects = {record.subject for record in model.pricing}
        assert subjects == {
            "table:fact",
            "table:dim",
            "edge:dim.k=fact.k",
        }
