"""Tests for the miniature cost-based join-order optimizer."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.baselines import HeuristicKDE, SampleCountEstimator
from repro.db import Table
from repro.db.optimizer import (
    EstimatedCostModel,
    JoinQuery,
    TrueCostModel,
    optimize_join_order,
    plan_quality_ratio,
)


@pytest.fixture
def star_schema(rng):
    """A small star: big fact table, two dimensions of very different
    post-predicate sizes, so join order matters a lot."""
    keys_a = np.arange(5000.0)
    keys_b = np.arange(2000.0)
    fact = Table(
        3,
        initial_rows=np.column_stack(
            [
                rng.integers(0, 5000, 20_000).astype(float),
                rng.integers(0, 2000, 20_000).astype(float),
                rng.normal(size=20_000),
            ]
        ),
    )
    dim_a = Table(
        2, initial_rows=np.column_stack([keys_a, rng.normal(size=5000)])
    )
    dim_b = Table(
        2, initial_rows=np.column_stack([keys_b, rng.normal(size=2000)])
    )
    query = JoinQuery(
        tables={"fact": fact, "dim_a": dim_a, "dim_b": dim_b},
        predicates={
            # Selective predicate on dim_a (few rows survive), loose on
            # dim_b.
            "dim_a": Box([0.0, -3.0], [10.0, 3.0]),
            "dim_b": Box([0.0, -5.0], [1999.0, 5.0]),
        },
        joins=[("fact", 0, "dim_a", 0), ("fact", 1, "dim_b", 0)],
    )
    return query


class TestJoinQuery:
    def test_validation(self, rng):
        table = Table(1, initial_rows=rng.normal(size=(10, 1)))
        with pytest.raises(ValueError):
            JoinQuery(tables={"only": table})
        other = Table(1, initial_rows=rng.normal(size=(10, 1)))
        with pytest.raises(ValueError):
            JoinQuery(
                tables={"a": table, "b": other},
                predicates={"c": Box([0.0], [1.0])},
            )
        with pytest.raises(ValueError):
            JoinQuery(
                tables={"a": table, "b": other},
                joins=[("a", 5, "b", 0)],
            )

    def test_join_edges_between(self, star_schema):
        edges = star_schema.join_edges_between(frozenset({"fact"}), "dim_a")
        assert len(edges) == 1
        assert star_schema.join_edges_between(frozenset({"dim_b"}), "dim_a") == []


class TestTrueCostModel:
    def test_base_cardinality(self, star_schema):
        model = TrueCostModel()
        assert model.base_cardinality(star_schema, "fact") == 20_000
        survivors = model.base_cardinality(star_schema, "dim_a")
        assert 0 < survivors <= 11

    def test_join_selectivity(self, star_schema):
        model = TrueCostModel()
        selectivity = model.join_selectivity(
            star_schema, ("fact", 0, "dim_a", 0)
        )
        # Each fact row matches exactly one of the 5000 dim_a keys.
        assert selectivity == pytest.approx(1.0 / 5000.0, rel=0.01)


class TestOptimization:
    def test_optimal_joins_selective_dimension_first(self, star_schema):
        plan = optimize_join_order(star_schema, TrueCostModel())
        # Joining the highly selective dim_a early shrinks intermediates.
        assert plan.order.index("dim_a") < plan.order.index("dim_b")

    def test_plan_cost_positive(self, star_schema):
        plan = optimize_join_order(star_schema, TrueCostModel())
        assert plan.cost > 0
        assert len(plan.nodes) == 3

    def test_estimated_model_with_good_estimators(self, star_schema, rng):
        estimators = {
            name: SampleCountEstimator(table.rows())
            for name, table in star_schema.tables.items()
        }
        joins = {
            ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
            ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
        }
        model = EstimatedCostModel(estimators, joins)
        plan = optimize_join_order(star_schema, model)
        assert plan_quality_ratio(star_schema, plan) == pytest.approx(
            1.0, abs=0.2
        )

    def test_bad_estimates_cause_bad_plans(self, star_schema):
        """Wildly wrong base cardinalities flip the join order, and the
        plan-quality ratio exposes the regression."""

        class InvertedEstimator:
            def __init__(self, selectivity):
                self._selectivity = selectivity

            def estimate(self, query):
                return self._selectivity

        estimators = {
            "fact": InvertedEstimator(1.0),
            # Claim dim_a's selective predicate keeps everything and
            # dim_b's loose predicate keeps nothing.
            "dim_a": InvertedEstimator(1.0),
            "dim_b": InvertedEstimator(1e-4),
        }
        joins = {
            ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
            ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
        }
        plan = optimize_join_order(
            star_schema, EstimatedCostModel(estimators, joins)
        )
        assert plan.order.index("dim_b") < plan.order.index("dim_a")
        assert plan_quality_ratio(star_schema, plan) > 1.5

    def test_kde_estimates_give_near_optimal_plans(self, star_schema, rng):
        """End-to-end: KDE models per table feed the optimizer."""
        estimators = {
            name: HeuristicKDE(table.analyze(min(512, len(table)), rng))
            for name, table in star_schema.tables.items()
        }
        joins = {
            ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
            ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
        }
        plan = optimize_join_order(
            star_schema, EstimatedCostModel(estimators, joins)
        )
        assert plan_quality_ratio(star_schema, plan) < 1.5

    def test_missing_estimator_raises(self, star_schema):
        model = EstimatedCostModel({}, {})
        with pytest.raises(KeyError):
            optimize_join_order(star_schema, model)

    def test_flipped_edge_lookup(self, star_schema):
        estimators = {
            name: SampleCountEstimator(table.rows())
            for name, table in star_schema.tables.items()
        }
        joins = {
            # Stored flipped relative to the query's edges.
            ("dim_a", 0, "fact", 0): 1.0 / 5000.0,
            ("dim_b", 0, "fact", 1): 1.0 / 2000.0,
        }
        plan = optimize_join_order(
            star_schema, EstimatedCostModel(estimators, joins)
        )
        assert plan.cost > 0

    def test_cross_product_without_edge(self, rng):
        a = Table(1, initial_rows=rng.normal(size=(100, 1)))
        b = Table(1, initial_rows=rng.normal(size=(10, 1)))
        query = JoinQuery(tables={"a": a, "b": b})
        plan = optimize_join_order(query, TrueCostModel())
        assert plan.cost == pytest.approx(1000.0)

    def test_table_cap(self, rng):
        tables = {
            f"t{i}": Table(1, initial_rows=rng.normal(size=(5, 1)))
            for i in range(9)
        }
        query = JoinQuery(tables=tables)
        with pytest.raises(ValueError):
            optimize_join_order(query, TrueCostModel())
