"""Workload-replay harness: CSV/SQL ingest and the replay loop."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.baselines import HeuristicKDE
from repro.baselines.base import SelectivityEstimator
from repro.db import Table
from repro.db.replay import (
    LoggedQuery,
    load_query_log,
    load_table_csv,
    qerror,
    replay_workload,
)
from repro.geometry import Box


@pytest.fixture
def table_csv(tmp_path):
    rng = np.random.default_rng(0)
    rows = rng.normal(size=(500, 2))
    path = tmp_path / "table.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y"])
        writer.writerows(rows.tolist())
    return str(path), rows


def _write_log_csv(path, records, header):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(records)


# ----------------------------------------------------------------------
# Table ingest
# ----------------------------------------------------------------------
def test_load_table_csv_roundtrip(table_csv):
    path, rows = table_csv
    table = load_table_csv(path)
    assert table.column_names == ["x", "y"]
    assert len(table) == 500
    np.testing.assert_allclose(table.rows(), rows)


def test_load_table_csv_rejects_garbage(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_table_csv(str(empty))

    header_only = tmp_path / "header.csv"
    header_only.write_text("x,y\n")
    with pytest.raises(ValueError, match="no rows"):
        load_table_csv(str(header_only))

    ragged = tmp_path / "ragged.csv"
    ragged.write_text("x,y\n1.0,2.0\n3.0\n")
    with pytest.raises(ValueError, match="expected 2 values"):
        load_table_csv(str(ragged))

    textual = tmp_path / "textual.csv"
    textual.write_text("x,y\n1.0,banana\n")
    with pytest.raises(ValueError, match="non-numeric"):
        load_table_csv(str(textual))


# ----------------------------------------------------------------------
# Query-log ingest: CSV
# ----------------------------------------------------------------------
def test_load_csv_log_with_recorded_truths(table_csv, tmp_path):
    path, _ = table_csv
    table = load_table_csv(path)
    log_path = tmp_path / "log.csv"
    _write_log_csv(
        log_path,
        [[-1.0, 1.0, -1.0, 1.0, 0.25], [0.0, 2.0, 0.0, 2.0, 0.1]],
        ["x_lo", "x_hi", "y_lo", "y_hi", "selectivity"],
    )
    log = load_query_log(str(log_path), table)
    assert len(log) == 2
    assert log[0].selectivity == pytest.approx(0.25)
    np.testing.assert_allclose(log[1].query.low, [0.0, 0.0])


def test_load_csv_log_without_truths(table_csv, tmp_path):
    path, _ = table_csv
    table = load_table_csv(path)
    log_path = tmp_path / "log.csv"
    _write_log_csv(
        log_path,
        [[-1.0, 1.0, -1.0, 1.0]],
        ["x_lo", "x_hi", "y_lo", "y_hi"],
    )
    log = load_query_log(str(log_path), table)
    assert log[0].selectivity is None


def test_load_csv_log_rejects_missing_columns(table_csv, tmp_path):
    path, _ = table_csv
    table = load_table_csv(path)
    log_path = tmp_path / "log.csv"
    _write_log_csv(log_path, [[-1.0, 1.0]], ["x_lo", "x_hi"])
    with pytest.raises(ValueError, match="y_lo"):
        load_query_log(str(log_path), table)


def test_load_csv_log_rejects_bad_selectivity(table_csv, tmp_path):
    path, _ = table_csv
    table = load_table_csv(path)
    log_path = tmp_path / "log.csv"
    _write_log_csv(
        log_path,
        [[-1.0, 1.0, -1.0, 1.0, 1.5]],
        ["x_lo", "x_hi", "y_lo", "y_hi", "selectivity"],
    )
    with pytest.raises(ValueError, match=r"outside \[0, 1\]"):
        load_query_log(str(log_path), table)


# ----------------------------------------------------------------------
# Query-log ingest: SQL-lite
# ----------------------------------------------------------------------
def test_load_sql_log(table_csv, tmp_path):
    path, rows = table_csv
    table = load_table_csv(path)
    log_path = tmp_path / "log.sql"
    log_path.write_text(
        "-- replayed trace\n"
        "\n"
        "SELECT * FROM t WHERE x BETWEEN -1 AND 1 AND y >= 0;\n"
        "SELECT count(*) FROM t WHERE y <= 0.5;\n"
    )
    log = load_query_log(str(log_path), table)
    assert len(log) == 2
    first, second = log
    np.testing.assert_allclose(first.query.low[0], -1.0)
    np.testing.assert_allclose(first.query.high[0], 1.0)
    assert first.query.low[1] == pytest.approx(0.0)
    # Unconstrained dimensions default to the table bounds.
    bounds = table.bounds()
    assert second.query.low[0] == pytest.approx(bounds.low[0])
    assert second.query.high[1] == pytest.approx(0.5)


def test_sql_equality_predicate_is_a_point_range(table_csv, tmp_path):
    path, _ = table_csv
    table = load_table_csv(path)
    log_path = tmp_path / "log.sql"
    log_path.write_text("SELECT * FROM t WHERE x = 0.25 AND y <= 1;\n")
    (entry,) = load_query_log(str(log_path), table)
    assert entry.query.low[0] == pytest.approx(0.25)
    assert entry.query.high[0] == pytest.approx(0.25)


def test_sql_rejects_unknown_columns_and_predicates(table_csv, tmp_path):
    path, _ = table_csv
    table = load_table_csv(path)

    unknown = tmp_path / "unknown.sql"
    unknown.write_text("SELECT * FROM t WHERE z >= 1;\n")
    with pytest.raises(ValueError, match="unknown column 'z'"):
        load_query_log(str(unknown), table)

    unsupported = tmp_path / "unsupported.sql"
    unsupported.write_text("SELECT * FROM t WHERE x LIKE 'foo';\n")
    with pytest.raises(ValueError, match="unsupported predicate"):
        load_query_log(str(unsupported), table)

    scan = tmp_path / "scan.sql"
    scan.write_text("SELECT * FROM t;\n")
    with pytest.raises(ValueError, match="WHERE"):
        load_query_log(str(scan), table)


# ----------------------------------------------------------------------
# The replay loop
# ----------------------------------------------------------------------
class _Recorder(SelectivityEstimator):
    """Constant estimator recording the feedback it receives."""

    name = "Recorder"

    def __init__(self, value=0.2):
        self.value = value
        self.received = []

    def estimate(self, query):
        return self.value

    def feedback(self, query, true_selectivity):
        self.received.append((query, true_selectivity))


def _table_and_log(rows=400, queries=10, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, 2))
    table = Table(2, initial_rows=data)
    log = []
    for _ in range(queries):
        center = data[rng.integers(rows)]
        width = rng.uniform(0.5, 1.0, size=2)
        log.append(LoggedQuery(Box(center - width, center + width)))
    return table, log


def test_replay_computes_truths_and_feeds_back():
    table, log = _table_and_log()
    recorder = _Recorder()
    report = replay_workload(table, recorder, log)
    assert len(report) == len(log)
    assert len(recorder.received) == len(log)
    for (query, truth), entry in zip(recorder.received, log):
        assert truth == pytest.approx(table.selectivity(entry.query))
    np.testing.assert_allclose(report.estimates, 0.2)
    assert report.floor == pytest.approx(1.0 / len(table))


def test_replay_prefers_recorded_truths():
    table, log = _table_and_log()
    log = [LoggedQuery(entry.query, selectivity=0.42) for entry in log]
    recorder = _Recorder()
    report = replay_workload(table, recorder, log)
    np.testing.assert_allclose(report.truths, 0.42)
    assert all(t == pytest.approx(0.42) for _, t in recorder.received)


def test_replay_without_feedback_is_silent():
    table, log = _table_and_log()
    recorder = _Recorder()
    report = replay_workload(table, recorder, log, feedback=False)
    assert recorder.received == []
    assert report.feedback is False


def test_replay_batched_matches_perquery_for_static_estimators():
    table, log = _table_and_log(queries=12)
    sample = table.analyze(128, seed=0)
    looped = replay_workload(
        table, HeuristicKDE(sample), log, feedback=False
    )
    batched = replay_workload(
        table, HeuristicKDE(sample), log, feedback=False, batch_size=5
    )
    np.testing.assert_allclose(batched.estimates, looped.estimates)
    np.testing.assert_allclose(batched.qerrors, looped.qerrors)


def test_replay_report_summaries():
    table, log = _table_and_log()
    report = replay_workload(table, _Recorder(), log)
    summary = report.as_dict()
    assert summary["queries"] == len(log)
    assert set(summary["qerror"]) == {"p50", "p90", "p95", "p99"}
    tail = report.tail(3)
    assert len(tail) == 3
    np.testing.assert_allclose(tail.estimates, report.estimates[-3:])
    assert len(report.tail(10_000)) == len(report)


def test_replay_rejects_bad_batch_size():
    table, log = _table_and_log()
    with pytest.raises(ValueError, match="batch_size"):
        replay_workload(table, _Recorder(), log, batch_size=0)


def test_qerror_floor():
    values = qerror(np.array([0.0, 0.5]), np.array([0.5, 0.0]), floor=0.01)
    np.testing.assert_allclose(values, [50.0, 50.0])
    with pytest.raises(ValueError, match="floor"):
        qerror(np.array([0.1]), np.array([0.1]), floor=0.0)
