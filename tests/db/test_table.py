"""Tests for the in-memory relational substrate."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.db.table import QueryResult, Table, TableListener


class RecordingListener(TableListener):
    def __init__(self):
        self.inserted = []
        self.deleted = []

    def on_insert(self, row):
        self.inserted.append(row.copy())

    def on_delete(self, row):
        self.deleted.append(row.copy())


@pytest.fixture
def table(rng):
    t = Table(2)
    t.bulk_load(rng.uniform(0, 10, size=(1000, 2)))
    return t


class TestConstruction:
    def test_empty(self):
        t = Table(3)
        assert len(t) == 0
        assert t.column_names == ["a0", "a1", "a2"]

    def test_column_names(self):
        t = Table(2, column_names=["x", "y"])
        assert t.column_names == ["x", "y"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Table(0)
        with pytest.raises(ValueError):
            Table(2, column_names=["only_one"])

    def test_initial_rows(self, rng):
        rows = rng.normal(size=(50, 3))
        t = Table(3, initial_rows=rows)
        assert len(t) == 50
        np.testing.assert_array_equal(t.rows(), rows)


class TestModification:
    def test_insert(self, table):
        n = len(table)
        table.insert([5.0, 5.0])
        assert len(table) == n + 1
        assert table.inserts == 1

    def test_insert_shape_check(self, table):
        with pytest.raises(ValueError):
            table.insert([1.0])

    def test_insert_many(self, table):
        n = len(table)
        table.insert_many(np.zeros((5, 2)))
        assert len(table) == n + 5

    def test_capacity_growth(self):
        t = Table(2)
        t.bulk_load(np.zeros((5000, 2)))
        assert len(t) == 5000

    def test_bulk_load_no_notifications(self):
        t = Table(2)
        listener = RecordingListener()
        t.add_listener(listener)
        t.bulk_load(np.zeros((10, 2)))
        assert listener.inserted == []

    def test_delete_in(self, table):
        region = Box([0.0, 0.0], [5.0, 5.0])
        expected = table.count(region)
        deleted = table.delete_in(region)
        assert deleted == expected
        assert table.count(region) == 0
        assert table.deletes == expected

    def test_delete_where_shape_check(self, table):
        with pytest.raises(ValueError):
            table.delete_where(lambda rows: np.array([True]))

    def test_update_where(self, table):
        region = Box([0.0, 0.0], [5.0, 5.0])
        count_before = table.count(region)
        changed = table.update_where(
            lambda rows: region.contains_points(rows),
            lambda rows: rows + 100.0,
        )
        assert changed == count_before
        assert table.count(region) == 0
        shifted = Box([100.0, 100.0], [105.0, 105.0])
        assert table.count(shifted) == count_before

    def test_update_preserves_cardinality(self, table):
        n = len(table)
        table.update_where(
            lambda rows: rows[:, 0] > 5.0, lambda rows: rows * 2.0
        )
        assert len(table) == n

    def test_update_shape_check(self, table):
        with pytest.raises(ValueError):
            table.update_where(
                lambda rows: rows[:, 0] > 5.0,
                lambda rows: rows[:, :1],
            )


class TestListeners:
    def test_insert_notification(self, table):
        listener = RecordingListener()
        table.add_listener(listener)
        table.insert([1.0, 2.0])
        assert len(listener.inserted) == 1
        np.testing.assert_array_equal(listener.inserted[0], [1.0, 2.0])

    def test_delete_notification(self, table):
        listener = RecordingListener()
        table.add_listener(listener)
        deleted = table.delete_in(Box([0.0, 0.0], [3.0, 3.0]))
        assert len(listener.deleted) == deleted

    def test_update_notifies_delete_then_insert(self, table):
        listener = RecordingListener()
        table.add_listener(listener)
        changed = table.update_where(
            lambda rows: rows[:, 0] < 1.0, lambda rows: rows + 50.0
        )
        assert len(listener.deleted) == changed
        assert len(listener.inserted) == changed

    def test_remove_listener(self, table):
        listener = RecordingListener()
        table.add_listener(listener)
        table.remove_listener(listener)
        table.insert([0.0, 0.0])
        assert listener.inserted == []


class TestQueries:
    def test_count_matches_brute_force(self, table, rng):
        for _ in range(10):
            center = rng.uniform(0, 10, 2)
            box = Box(center - 1.0, center + 1.0)
            expected = int(box.contains_points(table.rows()).sum())
            assert table.count(box) == expected

    def test_select(self, table):
        box = Box([2.0, 2.0], [4.0, 4.0])
        rows = table.select(box)
        assert rows.shape[0] == table.count(box)
        assert box.contains_points(rows).all()

    def test_execute_result(self, table):
        box = Box([0.0, 0.0], [10.0, 10.0])
        result = table.execute(box)
        assert isinstance(result, QueryResult)
        assert result.count == len(table)
        assert result.selectivity == pytest.approx(1.0)

    def test_selectivity_empty_table(self):
        t = Table(2)
        assert t.execute(Box([0.0, 0.0], [1.0, 1.0])).selectivity == 0.0

    def test_dimension_mismatch(self, table):
        with pytest.raises(ValueError):
            table.count(Box([0.0], [1.0]))

    def test_bounds(self, table):
        bounds = table.bounds()
        assert bounds.contains_points(table.rows()).all()

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            Table(2).bounds()

    def test_rows_read_only(self, table):
        with pytest.raises(ValueError):
            table.rows()[0, 0] = 1.0


class TestSampling:
    def test_analyze_size(self, table, rng):
        sample = table.analyze(100, rng)
        assert sample.shape == (100, 2)

    def test_analyze_without_replacement(self, table, rng):
        sample = table.analyze(len(table), rng)
        assert sample.shape[0] == len(table)
        # All rows distinct (no replacement).
        assert np.unique(sample, axis=0).shape[0] == len(table)

    def test_analyze_caps_at_table_size(self, rng):
        t = Table(2, initial_rows=rng.normal(size=(10, 2)))
        assert t.analyze(100, rng).shape[0] == 10

    def test_analyze_validation(self, table, rng):
        with pytest.raises(ValueError):
            table.analyze(0, rng)
        with pytest.raises(ValueError):
            Table(2).analyze(10, rng)

    def test_analyze_seed_is_deterministic(self, table):
        """Regression: ANALYZE used to draw fresh OS entropy when no rng
        was passed, breaking the seeding discipline — two warm starts
        from the same table must agree bit-for-bit."""
        first = table.analyze(64, seed=7)
        second = table.analyze(64, seed=7)
        np.testing.assert_array_equal(first, second)
        assert not np.array_equal(first, table.analyze(64, seed=8))

    def test_analyze_accepts_seed_sequence(self, table):
        sequence = np.random.SeedSequence(11)
        first = table.analyze(64, seed=sequence)
        second = table.analyze(64, seed=np.random.SeedSequence(11))
        np.testing.assert_array_equal(first, second)

    def test_analyze_seed_matches_equivalent_rng(self, table):
        by_seed = table.analyze(64, seed=3)
        by_rng = table.analyze(
            64, np.random.default_rng(np.random.SeedSequence(3))
        )
        np.testing.assert_array_equal(by_seed, by_rng)

    def test_analyze_rejects_rng_plus_seed(self, table, rng):
        with pytest.raises(ValueError, match="not both"):
            table.analyze(10, rng, seed=0)

    def test_sample_rows_with_replacement(self, rng):
        t = Table(2, initial_rows=rng.normal(size=(5, 2)))
        rows = t.sample_rows(50, rng)
        assert rows.shape == (50, 2)

    def test_sample_rows_empty_table(self, rng):
        assert Table(2).sample_rows(5, rng).shape == (0, 2)


class TestFailureInjection:
    def test_rejects_nan_bulk_load(self):
        t = Table(2)
        with pytest.raises(ValueError, match="non-finite"):
            t.bulk_load(np.array([[1.0, np.nan]]))

    def test_rejects_nan_insert(self):
        t = Table(2)
        with pytest.raises(ValueError, match="non-finite"):
            t.insert([np.inf, 0.0])

    def test_table_unchanged_after_rejected_insert(self, table):
        n = len(table)
        with pytest.raises(ValueError):
            t = table.insert([np.nan, 0.0])
        assert len(table) == n
