"""Tests for the simulated device layer: specs, buffers, runtime, costs."""

import numpy as np
import pytest

from repro.device.buffers import DeviceBuffer, TransferLog
from repro.device.costmodel import DeviceCostModel, STHolesCostModel
from repro.device.runtime import DeviceContext
from repro.device.specs import GTX460, XEON_E5620, DeviceSpec, named_device


class TestSpecs:
    def test_presets(self):
        assert GTX460.kind == "gpu"
        assert XEON_E5620.kind == "cpu"
        # The paper's headline: the GPU has ~4x the kernel throughput.
        ratio = GTX460.compute_throughput / XEON_E5620.compute_throughput
        assert 3.0 <= ratio <= 5.0

    def test_named_lookup(self):
        assert named_device("gpu") is GTX460
        assert named_device("cpu") is XEON_E5620
        with pytest.raises(ValueError):
            named_device("tpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "fpga", 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("x", "gpu", -1.0, 1.0, 1.0, 1.0)


class TestCostModel:
    def test_kernel_cost_linear(self):
        model = DeviceCostModel(GTX460)
        base = model.kernel_seconds(0)
        assert base == GTX460.kernel_launch_latency
        assert model.kernel_seconds(10_000_000) > 10 * base

    def test_transfer_cost(self):
        model = DeviceCostModel(GTX460)
        assert model.transfer_seconds(0) == GTX460.transfer_latency
        one_gb = model.transfer_seconds(10 ** 9)
        assert one_gb == pytest.approx(
            GTX460.transfer_latency + 1e9 / GTX460.transfer_bandwidth
        )

    def test_validation(self):
        model = DeviceCostModel(GTX460)
        with pytest.raises(ValueError):
            model.kernel_seconds(-1)
        with pytest.raises(ValueError):
            model.transfer_seconds(-1)

    def test_stholes_model(self):
        model = STHolesCostModel()
        assert model.estimate_seconds(0) == model.base_seconds
        assert model.estimate_seconds(1000) > model.estimate_seconds(10)
        with pytest.raises(ValueError):
            model.estimate_seconds(-1)


class TestBuffers:
    def test_write_read_roundtrip(self):
        buffer = DeviceBuffer("b", np.arange(6.0).reshape(2, 3))
        data = buffer.read()
        np.testing.assert_array_equal(data, np.arange(6.0).reshape(2, 3))
        buffer.write(np.ones((2, 3)))
        np.testing.assert_array_equal(buffer.read(), np.ones((2, 3)))

    def test_write_shape_check(self):
        buffer = DeviceBuffer("b", np.zeros((2, 3)))
        with pytest.raises(ValueError):
            buffer.write(np.zeros((3, 2)))

    def test_write_rows(self):
        buffer = DeviceBuffer("b", np.zeros((4, 2)))
        nbytes = buffer.write_rows(np.array([1, 3]), np.ones((2, 2)))
        assert nbytes == 2 * 2 * 8
        np.testing.assert_array_equal(buffer.data[1], [1.0, 1.0])
        np.testing.assert_array_equal(buffer.data[0], [0.0, 0.0])

    def test_transfer_log(self):
        log = TransferLog()
        log.record("to_device", 100, "sample")
        log.record("to_host", 8, "estimate")
        log.record("to_device", 50, "sample")
        assert log.count == 3
        assert log.total_bytes == 158
        assert log.bytes_in_direction("to_device") == 150
        assert log.bytes_for_label("sample") == 150
        log.clear()
        assert log.count == 0


class TestContext:
    def test_clock_accumulates(self):
        ctx = DeviceContext.for_device("gpu")
        assert ctx.elapsed_seconds == 0.0
        ctx.launch("k", 1000)
        first = ctx.elapsed_seconds
        assert first > 0
        ctx.launch("k", 1000)
        assert ctx.elapsed_seconds == pytest.approx(2 * first)
        ctx.reset_clock()
        assert ctx.elapsed_seconds == 0.0

    def test_upload_download_metered(self):
        ctx = DeviceContext.for_device("gpu")
        ctx.upload("buf", np.zeros(100, dtype=np.float32))
        assert ctx.transfers.bytes_in_direction("to_device") == 400
        data = ctx.download("buf")
        assert data.shape == (100,)
        assert ctx.transfers.bytes_in_direction("to_host") == 400

    def test_upload_overwrites(self):
        ctx = DeviceContext.for_device("cpu")
        ctx.upload("buf", np.zeros(4))
        ctx.upload("buf", np.ones(4))
        np.testing.assert_array_equal(ctx.buffer("buf").data, np.ones(4))
        assert ctx.transfers.count == 2

    def test_allocate_not_metered(self):
        ctx = DeviceContext.for_device("gpu")
        ctx.allocate("scratch", np.zeros(1000))
        assert ctx.transfers.count == 0
        with pytest.raises(ValueError):
            ctx.allocate("scratch", np.zeros(1))

    def test_upload_rows(self):
        ctx = DeviceContext.for_device("gpu")
        ctx.upload("sample", np.zeros((10, 2)))
        ctx.upload_rows("sample", np.array([0]), np.ones((1, 2)))
        np.testing.assert_array_equal(ctx.buffer("sample").data[0], [1.0, 1.0])
        assert ctx.transfers.count == 2

    def test_missing_buffer(self):
        ctx = DeviceContext.for_device("gpu")
        with pytest.raises(KeyError):
            ctx.buffer("nope")

    def test_free(self):
        ctx = DeviceContext.for_device("gpu")
        ctx.allocate("tmp", np.zeros(2))
        ctx.free("tmp")
        with pytest.raises(KeyError):
            ctx.buffer("tmp")

    def test_free_unknown_buffer_is_descriptive(self):
        ctx = DeviceContext.for_device("gpu")
        with pytest.raises(KeyError, match="no buffer named 'nope'"):
            ctx.free("nope")

    def test_double_free_is_descriptive(self):
        ctx = DeviceContext.for_device("gpu")
        ctx.allocate("tmp", np.zeros(2))
        ctx.free("tmp")
        with pytest.raises(KeyError, match="no buffer named 'tmp'"):
            ctx.free("tmp")

    def test_launch_counting(self):
        ctx = DeviceContext.for_device("gpu")
        ctx.launch("contribution", 10)
        ctx.launch("contribution", 10)
        ctx.reduce("sum", 10)
        assert ctx.launch_count() == 3
        assert ctx.launch_count("contribution") == 2
        assert ctx.launch_count("sum") == 1


class TestCodegen:
    def test_contribution_matches_core(self, rng):
        from repro.core import KernelDensityEstimator
        from repro.device.codegen import compile_contribution_kernel
        from repro.geometry import Box

        sample = rng.normal(size=(128, 3))
        h = np.array([0.4, 0.6, 0.8])
        kernel = compile_contribution_kernel(3, "float64")
        box = Box([-1.0, -0.5, 0.0], [1.0, 0.5, 2.0])
        generated = kernel(sample, box.low, box.high, h)
        expected = KernelDensityEstimator(sample, h).contributions(box)
        np.testing.assert_allclose(generated, expected, atol=1e-14)

    def test_gradient_matches_core(self, rng):
        from repro.core import KernelDensityEstimator
        from repro.device.codegen import compile_gradient_kernel
        from repro.geometry import Box

        sample = rng.normal(size=(128, 3))
        h = np.array([0.4, 0.6, 0.8])
        kernel = compile_gradient_kernel(3, "float64")
        box = Box([-1.0, -0.5, 0.0], [1.0, 0.5, 2.0])
        generated = kernel(sample, box.low, box.high, h).mean(axis=0)
        expected = KernelDensityEstimator(sample, h).selectivity_gradient(box)
        np.testing.assert_allclose(generated, expected, atol=1e-12)

    def test_one_dimensional(self, rng):
        from repro.device.codegen import (
            compile_contribution_kernel,
            compile_gradient_kernel,
        )

        sample = rng.normal(size=(64, 1))
        h = np.array([0.5])
        c = compile_contribution_kernel(1, "float64")
        g = compile_gradient_kernel(1, "float64")
        low, high = np.array([-1.0]), np.array([1.0])
        assert c(sample, low, high, h).shape == (64,)
        assert g(sample, low, high, h).shape == (64, 1)

    def test_cache(self):
        from repro.device.codegen import (
            clear_kernel_cache,
            compile_contribution_kernel,
            kernel_cache_size,
        )

        clear_kernel_cache()
        k1 = compile_contribution_kernel(4, "float32")
        k2 = compile_contribution_kernel(4, "float32")
        assert k1 is k2
        assert kernel_cache_size() == 1

    def test_validation(self):
        from repro.device.codegen import compile_contribution_kernel

        with pytest.raises(ValueError):
            compile_contribution_kernel(0)
