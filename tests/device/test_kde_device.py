"""Tests for the device-resident KDE and the Figure 7 timing shape."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.device import DeviceContext, DeviceKDE


@pytest.fixture
def sample(rng):
    return rng.normal(size=(1024, 4))


@pytest.fixture
def query():
    return Box(np.full(4, -1.0), np.full(4, 1.0))


def make_kde(sample, device="gpu", **kwargs):
    ctx = DeviceContext.for_device(device)
    return DeviceKDE(sample, ctx, **kwargs), ctx


class TestCorrectness:
    def test_float64_matches_core_exactly(self, sample, query):
        kde, _ = make_kde(sample, precision="float64", adaptive=False)
        core = KernelDensityEstimator(sample, scott_bandwidth(sample))
        assert kde.estimate(query) == pytest.approx(
            core.selectivity(query), abs=1e-15
        )

    def test_float32_close_to_core(self, sample, query):
        kde, _ = make_kde(sample, precision="float32", adaptive=False)
        core = KernelDensityEstimator(sample, scott_bandwidth(sample))
        assert kde.estimate(query) == pytest.approx(
            core.selectivity(query), abs=1e-5
        )

    def test_validation(self, sample):
        ctx = DeviceContext.for_device("gpu")
        with pytest.raises(ValueError):
            DeviceKDE(np.zeros((1, 2)), ctx)
        with pytest.raises(ValueError):
            DeviceKDE(sample, ctx, precision="float16")
        with pytest.raises(ValueError):
            DeviceKDE(sample, ctx, bandwidth=np.array([1.0, -1.0, 1.0, 1.0]))

    def test_query_dimension_check(self, sample):
        kde, _ = make_kde(sample)
        with pytest.raises(ValueError):
            kde.estimate(Box([0.0], [1.0]))

    def test_set_bandwidth(self, sample, query):
        kde, ctx = make_kde(sample, precision="float64", adaptive=False)
        new_h = np.full(4, 0.5)
        kde.set_bandwidth(new_h)
        core = KernelDensityEstimator(sample, new_h)
        assert kde.estimate(query) == pytest.approx(core.selectivity(query))
        with pytest.raises(ValueError):
            kde.set_bandwidth(np.array([1.0]))


class TestChoreography:
    def test_construction_is_one_bulk_transfer(self, sample):
        kde, ctx = make_kde(sample, adaptive=False)
        sample_bytes = ctx.transfers.bytes_for_label("sample")
        assert sample_bytes == 1024 * 4 * 4  # float32 row-major sample
        # Scott initialisation: two reduction launches (sums and squares).
        assert ctx.launch_count("column_sums") == 1
        assert ctx.launch_count("column_squares") == 1

    def test_estimate_transfer_pattern(self, sample, query):
        kde, ctx = make_kde(sample, adaptive=False)
        ctx.transfers.clear()
        kde.estimate(query)
        # Exactly: query bounds in, estimate out (footnote 2 of the paper).
        assert ctx.transfers.bytes_for_label("query_bounds") == 8 * 4
        assert ctx.transfers.bytes_for_label("estimate") == 4
        assert ctx.transfers.count == 2

    def test_adaptive_adds_hidden_kernels(self, sample, query):
        kde, ctx = make_kde(sample, adaptive=True)
        kde.estimate(query)
        assert ctx.launch_count("gradient") == 1
        assert ctx.launch_count("gradient_reduction") == 1
        # Hidden behind query runtime: priced with zero work terms.
        gradient_launches = [
            r for r in ctx.launches if r.kernel == "gradient"
        ]
        assert gradient_launches[0].term_count == 0

    def test_feedback_updates_bandwidth_after_batch(self, sample, query):
        kde, ctx = make_kde(sample, adaptive=True, precision="float64")
        before = kde.bandwidth
        for _ in range(kde.tuner.config.batch_size):
            kde.estimate(query)
            kde.feedback(query, 0.9)
        assert kde.tuner.updates_applied == 1
        assert not np.array_equal(kde.bandwidth, before)

    def test_feedback_returns_flagged_points(self, rng):
        sample = rng.uniform(-5, 5, size=(256, 2))
        ctx = DeviceContext.for_device("gpu")
        kde = DeviceKDE(
            sample, ctx, bandwidth=np.array([0.2, 0.2]), adaptive=True
        )
        query = Box([-2.0, -2.0], [2.0, 2.0])
        kde.estimate(query)
        flagged = kde.feedback(query, 0.0)  # empty region: shortcut fires
        assert flagged.size > 0
        assert ctx.transfers.bytes_for_label("replacement_bitmap") > 0

    def test_replace_rows(self, rng):
        sample = rng.uniform(-5, 5, size=(256, 2))
        ctx = DeviceContext.for_device("gpu")
        kde = DeviceKDE(sample, ctx, adaptive=True)
        kde.replace_rows(np.array([0, 1]), np.full((2, 2), 3.0))
        np.testing.assert_allclose(
            ctx.buffer("sample").data[0], [3.0, 3.0], atol=1e-6
        )
        assert ctx.transfers.bytes_for_label("sample_replacement") == 2 * 2 * 4

    def test_feedback_without_estimate_recomputes(self, sample, query):
        kde, _ = make_kde(sample, adaptive=True)
        flagged = kde.feedback(query, 0.5)
        assert flagged.size == 0

    def test_non_adaptive_feedback_noop(self, sample, query):
        kde, ctx = make_kde(sample, adaptive=False)
        kde.estimate(query)
        assert kde.feedback(query, 0.5).size == 0

    def test_feedback_validation(self, sample, query):
        kde, _ = make_kde(sample, adaptive=True)
        kde.estimate(query)
        with pytest.raises(ValueError):
            kde.feedback(query, 2.0)


class TestBatchedChoreography:
    """The batched path: one launch per batch, per-query identical results."""

    @pytest.fixture
    def queries(self, rng):
        centers = rng.normal(size=(16, 4))
        widths = rng.uniform(0.2, 2.0, size=(16, 4))
        return [Box(c - w / 2, c + w / 2) for c, w in zip(centers, widths)]

    def test_results_match_per_query_estimates(self, sample, queries):
        batched, _ = make_kde(sample, precision="float64", adaptive=False)
        looped, _ = make_kde(sample, precision="float64", adaptive=False)
        estimates = batched.estimate_batch(queries)
        expected = np.array([looped.estimate(q) for q in queries])
        np.testing.assert_array_equal(estimates, expected)

    def test_float32_results_match_per_query(self, sample, queries):
        batched, _ = make_kde(sample, precision="float32", adaptive=False)
        looped, _ = make_kde(sample, precision="float32", adaptive=False)
        np.testing.assert_array_equal(
            batched.estimate_batch(queries),
            np.array([looped.estimate(q) for q in queries]),
        )

    def test_single_launch_per_batch(self, sample, queries):
        kde, ctx = make_kde(sample, adaptive=False)
        kde.estimate_batch(queries)
        assert ctx.launch_count("estimate") == 1
        assert ctx.launch_count("contribution") == 0
        # One reduction per query, each over the s contribution terms.
        reductions = [r for r in ctx.launches if r.kernel == "estimate_reduction"]
        assert len(reductions) == len(queries)
        assert all(r.term_count == 1024 for r in reductions)

    def test_launch_covers_all_kernel_terms(self, sample, queries):
        kde, ctx = make_kde(sample, adaptive=False)
        kde.estimate_batch(queries)
        launches = [r for r in ctx.launches if r.kernel == "estimate"]
        assert launches[0].term_count == len(queries) * 1024 * 4  # q * s * d

    def test_single_transfer_each_way(self, sample, queries):
        kde, ctx = make_kde(sample, adaptive=False)
        ctx.transfers.clear()
        kde.estimate_batch(queries)
        # One upload of all 2qd bounds, one download of all q estimates.
        assert ctx.transfers.count == 2
        assert ctx.transfers.bytes_for_label("query_bounds") == (
            2 * len(queries) * 4 * 4
        )
        assert ctx.transfers.bytes_for_label("estimates") == len(queries) * 4

    def test_batching_amortises_modelled_cost(self, sample, queries):
        batched, batched_ctx = make_kde(sample, adaptive=False)
        looped, looped_ctx = make_kde(sample, adaptive=False)
        batched_ctx.reset_clock()
        looped_ctx.reset_clock()
        batched.estimate_batch(queries)
        for query in queries:
            looped.estimate(query)
        # Same kernel work, 1/16th the launch + transfer overhead.
        assert batched_ctx.elapsed_seconds < looped_ctx.elapsed_seconds

    def test_feedback_batch_matches_per_query_feedback(self, sample, queries):
        batched, _ = make_kde(sample, precision="float64", adaptive=True)
        looped, _ = make_kde(sample, precision="float64", adaptive=True)
        truths = [0.2 + 0.02 * i for i in range(len(queries))]
        batched.estimate_batch(queries)
        flagged_batched = batched.feedback_batch(queries, truths)
        flagged_looped = []
        for query, truth in zip(queries, truths):
            looped.estimate(query)
            flagged_looped.append(looped.feedback(query, truth))
        np.testing.assert_array_equal(batched.bandwidth, looped.bandwidth)
        assert batched.tuner.updates_applied == looped.tuner.updates_applied
        for a, b in zip(flagged_batched, flagged_looped):
            np.testing.assert_array_equal(a, b)

    def test_feedback_batch_choreography(self, sample, queries):
        kde, ctx = make_kde(sample, adaptive=True)
        kde.estimate_batch(queries)
        ctx.transfers.clear()
        karma_before = ctx.launch_count("karma")
        kde.feedback_batch(queries, [0.3] * len(queries))
        # One loss-factor upload and one Karma launch for the whole batch.
        assert ctx.launch_count("karma") == karma_before + 1
        assert ctx.transfers.bytes_for_label("loss_factor") == len(queries) * 4

    def test_feedback_batch_recomputes_stale_batch(self, sample, queries):
        kde, ctx = make_kde(sample, adaptive=True)
        kde.estimate_batch(queries)
        kde.estimate(queries[0])  # invalidates the retained batch buffers
        before = ctx.launch_count("estimate")
        kde.feedback_batch(queries, [0.3] * len(queries))
        assert ctx.launch_count("estimate") == before + 1

    def test_feedback_batch_non_adaptive_noop(self, sample, queries):
        kde, _ = make_kde(sample, adaptive=False)
        kde.estimate_batch(queries)
        flagged = kde.feedback_batch(queries, [0.3] * len(queries))
        assert all(f.size == 0 for f in flagged)

    def test_validation(self, sample, queries):
        kde, _ = make_kde(sample, adaptive=True)
        with pytest.raises(ValueError):
            kde.estimate_batch([Box([0.0], [1.0])])
        with pytest.raises(ValueError):
            kde.feedback_batch(queries, [0.3])
        with pytest.raises(ValueError):
            kde.feedback_batch(queries, [2.0] * len(queries))


class TestTimingShape:
    """The qualitative runtime claims of Section 6.4 / Figure 7."""

    @staticmethod
    def _per_query_seconds(device, sample_size, adaptive, rng):
        data = rng.normal(size=(sample_size, 8))
        ctx = DeviceContext.for_device(device)
        kde = DeviceKDE(data, ctx, adaptive=adaptive)
        query = Box(np.full(8, -1.0), np.full(8, 1.0))
        ctx.reset_clock()
        repeats = 5
        for _ in range(repeats):
            kde.estimate(query)
            if adaptive:
                kde.feedback(query, 0.3)
        return ctx.elapsed_seconds / repeats

    def test_flat_then_linear(self, rng):
        small = self._per_query_seconds("gpu", 1024, False, rng)
        mid = self._per_query_seconds("gpu", 16_384, False, rng)
        large = self._per_query_seconds("gpu", 131_072, False, rng)
        # Flat start: 16x the points costs less than 3x the time.
        assert mid < 3 * small
        # Linear tail: 8x the points costs at least 3x the time.
        assert large > 3 * mid

    def test_gpu_faster_than_cpu_on_large_models(self, rng):
        gpu = self._per_query_seconds("gpu", 131_072, False, rng)
        cpu = self._per_query_seconds("cpu", 131_072, False, rng)
        assert 2.5 <= cpu / gpu <= 6.0

    def test_adaptive_overhead_constant(self, rng):
        gaps = []
        for size in (1024, 16_384, 131_072):
            heuristic = self._per_query_seconds("gpu", size, False, rng)
            adaptive = self._per_query_seconds("gpu", size, True, rng)
            gaps.append(adaptive - heuristic)
        # The adaptive overhead does not grow with the model size.
        assert max(gaps) < 2.0 * min(gaps) + 1e-6

    def test_gpu_under_1point5ms_at_128k(self, rng):
        adaptive = self._per_query_seconds("gpu", 131_072, True, rng)
        assert adaptive < 1.5e-3
