"""Tests for device fission and multi-device estimation (Section 8)."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.device import DeviceContext, DeviceKDE, GTX460
from repro.device.partition import MultiDeviceKDE, fission
from repro.device.runtime import DeviceContext as Context


@pytest.fixture
def sample(rng):
    return rng.normal(size=(4096, 4))


@pytest.fixture
def query():
    return Box(np.full(4, -1.0), np.full(4, 1.0))


class TestFission:
    def test_scales_compute_only(self):
        sub = fission(GTX460, 0.1)
        assert sub.compute_throughput == pytest.approx(
            GTX460.compute_throughput * 0.1
        )
        assert sub.kernel_launch_latency == GTX460.kernel_launch_latency
        assert sub.transfer_latency == GTX460.transfer_latency
        assert "10%" in sub.name

    def test_validation(self):
        with pytest.raises(ValueError):
            fission(GTX460, 0.0)
        with pytest.raises(ValueError):
            fission(GTX460, 1.5)

    def test_large_models_slow_down_proportionally(self, sample, query):
        """At 10% of the device, compute-bound estimation is ~10x slower,
        while latency-bound small models barely change."""

        def per_query(spec, points):
            context = Context(spec=spec)
            kde = DeviceKDE(sample[:points] if points <= len(sample) else
                            np.tile(sample, (points // len(sample) + 1, 1))[:points],
                            context, adaptive=False)
            context.reset_clock()
            kde.estimate(query)
            return context.elapsed_seconds

        full_large = per_query(GTX460, 131_072)
        sub_large = per_query(fission(GTX460, 0.1), 131_072)
        assert 5.0 <= sub_large / full_large <= 11.0

        full_small = per_query(GTX460, 1024)
        sub_small = per_query(fission(GTX460, 0.1), 1024)
        assert sub_small / full_small < 1.5

    def test_numerics_unchanged(self, sample, query):
        context = Context(spec=fission(GTX460, 0.25))
        kde = DeviceKDE(sample, context, precision="float64", adaptive=False)
        core = KernelDensityEstimator(sample, scott_bandwidth(sample))
        assert kde.estimate(query) == pytest.approx(
            core.selectivity(query), abs=1e-15
        )


class TestMultiDevice:
    def make(self, sample, devices=2, **kwargs):
        contexts = [DeviceContext.for_device("gpu") for _ in range(devices)]
        return MultiDeviceKDE(sample, contexts, **kwargs), contexts

    def test_matches_single_device_estimate(self, sample, query):
        multi, _ = self.make(sample, devices=4, precision="float64")
        single = KernelDensityEstimator(sample, scott_bandwidth(sample))
        assert multi.estimate(query) == pytest.approx(
            single.selectivity(query), abs=1e-12
        )

    def test_uneven_shards_weighted_correctly(self, rng, query):
        sample = rng.normal(size=(1001, 4))  # not divisible by 3
        multi, _ = self.make(sample, devices=3, precision="float64")
        single = KernelDensityEstimator(sample, scott_bandwidth(sample))
        assert multi.sample_size == 1001
        assert multi.estimate(query) == pytest.approx(
            single.selectivity(query), abs=1e-12
        )

    def test_parallel_speedup_on_large_models(self, rng, query):
        sample = rng.normal(size=(131_072, 4))
        single, single_ctx = self.make(sample, devices=1)
        single_ctx[0].reset_clock()
        single.reset_clock()
        single.estimate(query)
        one = single.parallel_elapsed_seconds

        quad, _ = self.make(sample, devices=4)
        quad.reset_clock()
        quad.estimate(query)
        four = quad.parallel_elapsed_seconds
        # Compute-bound regime: near-linear scaling (latency overheads
        # keep it below 4x).
        assert 2.0 <= one / four <= 4.2

    def test_set_bandwidth_broadcasts(self, sample, query):
        multi, _ = self.make(sample, devices=2, precision="float64")
        new_h = np.full(4, 0.5)
        multi.set_bandwidth(new_h)
        single = KernelDensityEstimator(sample, new_h)
        assert multi.estimate(query) == pytest.approx(
            single.selectivity(query), abs=1e-12
        )
        np.testing.assert_array_equal(multi.bandwidth, new_h)

    def test_validation(self, sample):
        with pytest.raises(ValueError):
            MultiDeviceKDE(sample, [])
        with pytest.raises(ValueError):
            MultiDeviceKDE(
                np.zeros((3, 2)),
                [DeviceContext.for_device("gpu") for _ in range(2)],
            )

    def test_device_count(self, sample):
        multi, _ = self.make(sample, devices=3)
        assert multi.device_count == 3
