"""Per-kernel timing in the device trace + the ``profile()`` summary,
and the sharded host backend of :class:`DeviceKDE`."""

import numpy as np
import pytest

from repro.device import DeviceContext, DeviceKDE
from repro.geometry import Box, QueryBatch


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def sample(rng):
    return rng.normal(size=(256, 3))


@pytest.fixture
def queries(rng):
    lows = rng.uniform(-2, 0, size=(20, 3))
    return QueryBatch(lows, lows + rng.uniform(0.5, 2, size=(20, 3)))


class TestProfile:
    def test_records_carry_seconds(self, sample, queries):
        context = DeviceContext.for_device("gpu")
        kde = DeviceKDE(sample, context, adaptive=True)
        kde.estimate_batch(queries)
        assert all(r.seconds > 0 for r in context.launches)
        assert all(r.seconds > 0 for r in context.transfers.records)

    def test_profile_partitions_the_clock(self, sample, queries):
        """kernel + transfer seconds in the profile == the modelled clock."""
        context = DeviceContext.for_device("gpu")
        kde = DeviceKDE(sample, context, adaptive=True)
        kde.estimate_batch(queries)
        kde.feedback_batch(queries, [0.001] * len(queries))
        profile = context.profile()
        assert profile["device"] == context.spec.name
        assert profile["total_seconds"] == pytest.approx(
            context.elapsed_seconds
        )
        assert profile["kernel_seconds"] == pytest.approx(
            sum(entry["seconds"] for entry in profile["kernels"].values())
        )
        assert "estimate" in profile["kernels"]
        assert profile["kernels"]["estimate"]["launches"] >= 1
        to_device = profile["transfers"]["to_device"]
        assert to_device["count"] > 0
        assert to_device["bytes"] > 0

    def test_kernel_seconds_filter(self, sample, queries):
        context = DeviceContext.for_device("gpu")
        kde = DeviceKDE(sample, context, adaptive=False)
        kde.estimate_batch(queries)
        total = context.kernel_seconds()
        estimate_only = context.kernel_seconds("estimate")
        assert 0 < estimate_only <= total

    def test_profile_survives_reset_clock(self, sample, queries):
        """reset_clock rewinds the clock but keeps the trace (and thus
        the profile) intact — experiments reset between phases."""
        context = DeviceContext.for_device("gpu")
        kde = DeviceKDE(sample, context, adaptive=False)
        kde.estimate_batch(queries)
        before = context.profile()
        context.reset_clock()
        assert context.elapsed_seconds == 0.0
        assert context.profile() == before


class TestShardedDeviceKDE:
    def test_rejects_unknown_backend(self, sample):
        context = DeviceContext.for_device("gpu")
        with pytest.raises(ValueError, match="backend"):
            DeviceKDE(sample, context, backend="no-such-backend")

    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded_estimates_match_numpy(self, sample, queries, shards):
        plain = DeviceKDE(sample, DeviceContext.for_device("gpu"))
        sharded = DeviceKDE(
            sample,
            DeviceContext.for_device("gpu"),
            backend="sharded",
            shards=shards,
        )
        np.testing.assert_array_equal(
            sharded.estimate_batch(queries), plain.estimate_batch(queries)
        )
        sharded.close()

    def test_sharded_sees_row_replacements(self, rng, sample, queries):
        plain = DeviceKDE(sample, DeviceContext.for_device("gpu"))
        sharded = DeviceKDE(
            sample,
            DeviceContext.for_device("gpu"),
            backend="sharded",
            shards=2,
        )
        sharded.estimate_batch(queries)  # spin up the pool

        indices = np.array([3, 99])
        rows = rng.normal(size=(2, 3))
        plain.replace_rows(indices, rows)
        sharded.replace_rows(indices, rows)

        np.testing.assert_array_equal(
            sharded.estimate_batch(queries), plain.estimate_batch(queries)
        )
        sharded.close()
