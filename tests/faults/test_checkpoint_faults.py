"""Torn-checkpoint injection, emergency writes, and retention failures."""

from unittest import mock

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.state import CheckpointError, ModelState
from repro.faults import FaultInjector, FaultPlan
from repro.serve import CheckpointManager
from repro.obs import MetricsRegistry


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    sample = rng.normal(size=(120, 2))
    return KernelDensityEstimator(sample, scott_bandwidth(sample))


class TestTornCheckpoint:
    def test_torn_write_is_rejected_on_load(self, tmp_path):
        injector = FaultInjector(FaultPlan.single("checkpoint", "torn"))
        manager = CheckpointManager(
            make_model(), str(tmp_path), faults=injector
        )
        path = manager.checkpoint()
        assert injector.fired("checkpoint", "torn") == 1
        with pytest.raises(CheckpointError):
            ModelState.load(path)

    def test_warm_start_skips_torn_falls_back_to_good(self, tmp_path):
        """The acceptance warm-start scenario: good write, torn write,
        restart — the newest readable checkpoint wins."""
        registry = MetricsRegistry()
        injector = FaultInjector(FaultPlan.single("checkpoint", "torn", at=2))
        model = make_model()
        manager = CheckpointManager(
            model, str(tmp_path), faults=injector, metrics=registry
        )
        good = manager.checkpoint()  # draw 1: intact
        model.bandwidth = model.bandwidth * 1.5
        manager.checkpoint()  # draw 2: torn

        restarted = make_model(seed=1)
        fresh_manager = CheckpointManager(restarted, str(tmp_path))
        restored_from = fresh_manager.warm_start()
        assert restored_from == good
        good_state = ModelState.load(good)
        np.testing.assert_array_equal(
            restarted.bandwidth, good_state.bandwidth
        )
        # The torn file was counted, not silently ignored (the fresh
        # manager reports into the ambient registry, so count via the
        # writer-side one after a second warm start with metrics).
        metered = CheckpointManager(
            make_model(seed=2), str(tmp_path), metrics=registry
        )
        metered.warm_start()
        assert registry.counter_value("checkpoint.corrupt_skipped") == 1


class TestEmergency:
    def test_emergency_writes_given_state_outside_cadence(self, tmp_path):
        registry = MetricsRegistry()
        model = make_model()
        manager = CheckpointManager(
            model,
            str(tmp_path),
            every_feedbacks=1000,
            metrics=registry,
        )
        state = model.snapshot()
        path = manager.emergency(state)
        loaded = ModelState.load(path)
        np.testing.assert_array_equal(loaded.sample, state.sample)
        assert registry.counter_value("checkpoint.emergency_writes") == 1
        assert registry.counter_value("checkpoint.writes") == 1

    def test_emergency_defaults_to_target_snapshot(self, tmp_path):
        model = make_model()
        manager = CheckpointManager(model, str(tmp_path))
        path = manager.emergency()
        loaded = ModelState.load(path)
        np.testing.assert_array_equal(
            loaded.sample, model.snapshot().sample
        )

    def test_emergency_respects_retention(self, tmp_path):
        manager = CheckpointManager(
            make_model(), str(tmp_path), keep_last=2
        )
        for _ in range(4):
            manager.emergency()
        assert len(manager.checkpoints()) == 2


class TestPruneFailures:
    def test_prune_failure_warns_and_counts(self, tmp_path):
        """Satellite regression: retention errors must be loud.

        (chmod tricks don't work as root, so the removal itself is
        patched to fail.)
        """
        registry = MetricsRegistry()
        manager = CheckpointManager(
            make_model(), str(tmp_path), keep_last=1, metrics=registry
        )
        manager.checkpoint()
        with mock.patch(
            "repro.serve.checkpoint.os.remove",
            side_effect=PermissionError("read-only"),
        ):
            with pytest.warns(RuntimeWarning, match="could not remove"):
                manager.checkpoint()
        assert registry.counter_value("checkpoint.prune_errors") == 1
        # Retention resumes once removal works again.
        manager.checkpoint()
        assert len(manager.checkpoints()) == 1
