"""Unit tests for the fault-tolerance primitives in :mod:`repro.faults`.

Plans, the injector's draw semantics, the retry policy's deterministic
backoff, and the circuit breaker state machine — all host-side, no
process pools involved.
"""

import pytest

from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    WorkerFault,
    export_breaker_metrics,
)
from repro.obs import MetricsRegistry


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("nonsense", "crash")
        with pytest.raises(ValueError, match="not valid at site"):
            FaultSpec("checkpoint", "crash")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("shard", "crash", at=0)
        with pytest.raises(ValueError, match="times"):
            FaultSpec("shard", "crash", times=0)

    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(42, draws=32, crash=0.2, slow=0.2)
        b = FaultPlan.seeded(42, draws=32, crash=0.2, slow=0.2)
        assert a.specs == b.specs
        assert len(a) > 0
        # A different seed yields a different plan (with these rates,
        # 32 i.i.d. draws collide with negligible probability).
        c = FaultPlan.seeded(43, draws=32, crash=0.2, slow=0.2)
        assert a.specs != c.specs

    def test_shard_filter(self):
        spec = FaultSpec("shard", "crash", shard=2)
        assert spec.matches({"shard": 2})
        assert not spec.matches({"shard": 0})


class TestFaultInjector:
    def test_fires_on_the_nth_matching_draw(self):
        injector = FaultInjector(FaultPlan.single("shard", "crash", at=3))
        assert injector.draw("shard", shard=0) is None
        assert injector.draw("shard", shard=1) is None
        fired = injector.draw("shard", shard=2)
        assert fired is not None and fired.kind == "crash"
        assert injector.draw("shard", shard=3) is None
        assert injector.fired() == 1
        assert injector.exhausted()

    def test_filters_gate_the_counter(self):
        injector = FaultInjector(
            FaultPlan.single("shard", "crash", shard=1, at=2)
        )
        # Draws for other shards never advance the matching counter.
        assert injector.draw("shard", shard=0) is None
        assert injector.draw("shard", shard=1) is None
        assert injector.draw("shard", shard=0) is None
        assert injector.draw("shard", shard=1) is not None

    def test_times_spans_consecutive_draws(self):
        injector = FaultInjector(FaultPlan.single("shm", "detach", times=2))
        assert injector.draw("shm") is not None
        assert injector.draw("shm") is not None
        assert injector.draw("shm") is None
        assert injector.fired("shm", "detach") == 2

    def test_reset_rewinds(self):
        injector = FaultInjector(FaultPlan.single("device", "error"))
        assert injector.draw("device", op="launch") is not None
        assert injector.draw("device", op="launch") is None
        injector.reset()
        assert injector.draw("device", op="launch") is not None

    def test_worker_fault_token(self):
        injector = FaultInjector(
            FaultPlan.single("shard", "slow", seconds=0.5)
        )
        spec = injector.draw("shard", shard=0)
        token = injector.worker_fault(spec)
        assert token == WorkerFault(kind="slow", seconds=0.5)
        assert injector.worker_fault(None) is None

    def test_metrics_emission(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan.single("shard", "crash"), metrics=registry
        )
        injector.draw("shard", shard=0)
        assert (
            registry.counter_value(
                "faults.injected", {"site": "shard", "kind": "crash"}
            )
            == 1
        )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_max=0.01, backoff_base=0.05)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.1, backoff_max=0.5, jitter=0.5
        )
        delays = policy.delays()
        assert delays == policy.delays()  # same seed, same delays
        bases = [0.1, 0.2, 0.4, 0.5]
        for delay, base in zip(delays, bases):
            assert base <= delay <= base * 1.5
        # Different seeds decorrelate the jitter.
        other = RetryPolicy(
            max_attempts=5,
            backoff_base=0.1,
            backoff_max=0.5,
            jitter=0.5,
            seed=1,
        )
        assert other.delays() != delays

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base=0.05, backoff_max=10.0, jitter=0.0
        )
        assert policy.delays() == (0.05, 0.1, 0.2)


class TestCircuitBreaker:
    def test_full_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(recovery_after=10.0, clock=lambda: clock[0])
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # window not elapsed
        clock[0] = 11.0
        assert breaker.allow()  # admits exactly one probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # second probe refused
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(recovery_after=5.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # fresh window from the re-open
        clock[0] = 12.0
        assert breaker.allow()

    def test_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_export_emits_each_transition_once(self):
        clock = [0.0]
        breaker = CircuitBreaker(recovery_after=1.0, clock=lambda: clock[0])
        registry = MetricsRegistry()
        labels = {"component": "test"}
        exported = export_breaker_metrics(breaker, registry, labels)
        assert registry.gauge("breaker.state", labels).value == 0.0
        breaker.record_failure()
        exported = export_breaker_metrics(breaker, registry, labels, exported)
        exported = export_breaker_metrics(breaker, registry, labels, exported)
        assert registry.gauge("breaker.state", labels).value == 1.0
        assert (
            registry.counter_value(
                "breaker.transitions",
                {**labels, "from_state": CLOSED, "to_state": OPEN},
            )
            == 1  # second export did not re-emit the transition
        )
        assert exported == 1
