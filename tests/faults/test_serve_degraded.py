"""Graceful serving degradation: readers survive writer failures."""

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.model import SelfTuningKDE
from repro.core.state import ModelState
from repro.geometry import Box
from repro.obs import MetricsRegistry
from repro.serve import CheckpointManager, SnapshotServer


def make_sample(seed=0):
    return np.random.default_rng(seed).normal(size=(150, 2))


def make_query():
    return Box(low=np.array([-1.0, -1.0]), high=np.array([0.8, 0.8]))


class FlakyModel:
    """A servable model whose feedback fails on command."""

    def __init__(self, sample):
        self._inner = SelfTuningKDE(sample, seed=3)
        self.fail_next = 0

    def snapshot(self) -> ModelState:
        return self._inner.snapshot()

    def restore(self, state: ModelState) -> None:
        self._inner.restore(state)

    def feedback(self, query, true_selectivity):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise RuntimeError("writer exploded mid-update")
        return self._inner.feedback(query, true_selectivity)


class TestDegradedServing:
    def test_readers_survive_writer_failure(self):
        registry = MetricsRegistry()
        model = FlakyModel(make_sample())
        server = SnapshotServer(model, metrics=registry)
        query = make_query()
        before = server.estimate(query)

        model.fail_next = 1
        with pytest.raises(RuntimeError, match="writer exploded"):
            server.feedback(query, 0.4)

        # Readers keep answering from the untouched publication.
        assert server.estimate(query) == before
        assert server.degraded
        assert server.writer_errors == 1
        assert registry.gauge("serve.degraded").value == 1.0
        assert registry.counter_value("serve.writer_errors") == 1

    def test_successful_feedback_clears_degraded(self):
        registry = MetricsRegistry()
        model = FlakyModel(make_sample())
        server = SnapshotServer(model, metrics=registry)
        query = make_query()
        model.fail_next = 1
        with pytest.raises(RuntimeError):
            server.feedback(query, 0.4)
        assert server.degraded
        server.feedback(query, 0.4)
        assert not server.degraded
        assert registry.gauge("serve.degraded").value == 0.0
        assert server.feedback_count == 1  # the failed one never counted

    def test_first_failure_cuts_emergency_checkpoint(self, tmp_path):
        registry = MetricsRegistry()
        model = FlakyModel(make_sample())
        server = SnapshotServer(model, metrics=registry)
        manager = CheckpointManager(
            server,
            str(tmp_path),
            every_feedbacks=10_000,
            metrics=registry,
        )
        server._checkpoints = manager
        query = make_query()
        published = server.published_state

        model.fail_next = 2
        for _ in range(2):
            with pytest.raises(RuntimeError):
                server.feedback(query, 0.4)

        # Exactly one emergency file, holding the known-good published
        # state (not whatever the torn writer might snapshot to).
        assert registry.counter_value("checkpoint.emergency_writes") == 1
        paths = manager.checkpoints()
        assert len(paths) == 1
        saved = ModelState.load(paths[0])
        np.testing.assert_array_equal(saved.sample, published.sample)
        np.testing.assert_array_equal(saved.bandwidth, published.bandwidth)

    def test_checkpoints_constructor_knob(self, tmp_path):
        """The ``checkpoints=`` parameter wires the emergency path."""
        registry = MetricsRegistry()
        model = FlakyModel(make_sample())
        # The manager snapshots the *server* (whole-epoch states).
        server = SnapshotServer(model, metrics=registry)
        manager = CheckpointManager(
            server, str(tmp_path), metrics=registry
        )
        server_with = SnapshotServer(
            model, metrics=registry, checkpoints=manager
        )
        model.fail_next = 1
        with pytest.raises(RuntimeError):
            server_with.feedback(make_query(), 0.5)
        assert registry.counter_value("checkpoint.emergency_writes") == 1

    def test_emergency_failure_does_not_mask_writer_error(self, tmp_path):
        """If even the emergency write fails, the original writer error
        still propagates (and the secondary failure is counted)."""
        registry = MetricsRegistry()
        model = FlakyModel(make_sample())
        server = SnapshotServer(model, metrics=registry)

        class ExplodingManager:
            def emergency(self, state=None):
                raise OSError("disk full")

        server._checkpoints = ExplodingManager()
        model.fail_next = 1
        with pytest.raises(RuntimeError, match="writer exploded"):
            server.feedback(make_query(), 0.4)
        assert registry.counter_value("serve.emergency_failures") == 1

    def test_restore_recovers_degraded_writer(self):
        registry = MetricsRegistry()
        model = FlakyModel(make_sample())
        server = SnapshotServer(model, metrics=registry)
        query = make_query()
        model.fail_next = 1
        with pytest.raises(RuntimeError):
            server.feedback(query, 0.4)
        assert server.degraded
        server.restore(server.published_state)
        assert not server.degraded
        assert registry.gauge("serve.degraded").value == 0.0
        # The recovered writer absorbs feedback again.
        server.feedback(query, 0.4)
        assert server.feedback_count == 1


class TestEndToEndWarmStartAfterCrash:
    def test_emergency_checkpoint_warm_starts_a_fresh_server(self, tmp_path):
        """Degradation ladder end-to-end: writer dies, emergency file is
        cut, a restarted process warm-starts from it and serves the same
        estimates."""
        model = FlakyModel(make_sample())
        server = SnapshotServer(model)
        manager = CheckpointManager(
            server, str(tmp_path), every_feedbacks=10_000
        )
        server._checkpoints = manager
        query = make_query()
        for _ in range(3):
            server.feedback(query, 0.4)
        server.publish()
        expected = server.estimate(query)

        model.fail_next = 1
        with pytest.raises(RuntimeError):
            server.feedback(query, 0.4)

        # "Restart": a brand-new model + server warm-started from disk.
        fresh = SelfTuningKDE(make_sample(seed=9), seed=4)
        fresh_server = SnapshotServer(fresh)
        fresh_manager = CheckpointManager(fresh_server, str(tmp_path))
        assert fresh_manager.warm_start() is not None
        assert fresh_server.estimate(query) == pytest.approx(
            expected, abs=1e-12
        )
