"""Chaos regression tests for the fault-tolerant sharded execution path.

Every fault here is injected deterministically (see
:mod:`repro.faults.plan`), so these are ordinary regression tests: the
same plan crashes the same worker at the same dispatch on every run.
The invariant under test is always the same — *whatever* the injected
infrastructure failure, batched results stay within the 1e-12 budget of
the reference numpy backend (and usually bit-match, since per-shard math
is identical).
"""

import os

import numpy as np
import pytest

from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.core.backends import NumpyBackend, ShardedBackend
from repro.core.backends.sharded import (
    ShardedSampleExecutor,
    ShardExecutionError,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.geometry import QueryBatch
from repro.obs import MetricsRegistry


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def sample(rng):
    return rng.normal(size=(300, 3))


@pytest.fixture
def batch(rng):
    lows = rng.uniform(-2.0, 0.0, size=(40, 3))
    highs = lows + rng.uniform(0.5, 2.5, size=(40, 3))
    return QueryBatch(lows, highs)


#: A retry policy tuned for tests: fast timeouts, no backoff sleeps.
FAST_RETRY = RetryPolicy(
    max_attempts=3, shard_timeout=20.0, backoff_base=0.0, jitter=0.0
)


def _expected(sample, batch):
    return KernelDensityEstimator(
        sample, scott_bandwidth(sample), backend=NumpyBackend()
    ).selectivity_batch(batch)


def _sharded(sample, **kwargs):
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("retry", FAST_RETRY)
    backend = ShardedBackend(**kwargs)
    kde = KernelDensityEstimator(
        sample, scott_bandwidth(sample), backend=backend
    )
    return kde, backend


class TestWorkerFaults:
    def test_sigkill_resurrects_pool_and_bit_matches(self, sample, batch):
        """The acceptance scenario: SIGKILL at a seeded shard dispatch.

        The executor must observe the broken pool, resurrect it
        (rebuild segment + pool, re-publish the sample) and re-dispatch,
        with batched results equal to the numpy backend within 1e-12 —
        all without opening the breaker, because the retry budget
        absorbed the fault.
        """
        injector = FaultInjector(
            FaultPlan.single("shard", "crash", shard=1)
        )
        kde, backend = _sharded(sample, faults=injector)
        values = kde.selectivity_batch(batch)
        np.testing.assert_allclose(
            values, _expected(sample, batch), rtol=0, atol=1e-12
        )
        assert injector.fired("shard", "crash") == 1
        assert backend.executor.resurrection_count == 1
        assert backend.executor.retry_count >= 1
        assert backend.breaker.state == "closed"
        # The resurrected pool keeps serving subsequent batches.
        np.testing.assert_allclose(
            kde.selectivity_batch(batch),
            _expected(sample, batch),
            rtol=0,
            atol=1e-12,
        )
        backend.close()

    def test_resurrection_visible_in_shard_metrics(self, sample, batch):
        """After a crash+retry, every shard reports a traced duration —
        proof the full shard set ran on the resurrected pool."""
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan.single("shard", "crash", shard=0)
        )
        backend = ShardedBackend(
            shards=3, retry=FAST_RETRY, faults=injector
        )
        kde = KernelDensityEstimator(
            sample,
            scott_bandwidth(sample),
            backend=backend,
            metrics=registry,
        )
        values = kde.selectivity_batch(batch)
        np.testing.assert_allclose(
            values, _expected(sample, batch), rtol=0, atol=1e-12
        )
        assert backend.executor.resurrection_count == 1
        assert backend.last_shard_seconds is not None
        assert len(backend.last_shard_seconds) == 3
        histogram = registry.histogram(
            "backend.shard_seconds", {"backend": "sharded"}
        )
        assert histogram.count == 3
        backend.close()

    def test_hang_times_out_and_retries(self, sample, batch):
        """A hung shard trips the per-shard timeout; the pool (with its
        stuck worker) is killed and the execution retried."""
        injector = FaultInjector(
            FaultPlan.single("shard", "hang", shard=0, seconds=30.0)
        )
        retry = RetryPolicy(
            max_attempts=2, shard_timeout=0.5, backoff_base=0.0, jitter=0.0
        )
        kde, backend = _sharded(sample, faults=injector, retry=retry)
        values = kde.selectivity_batch(batch)
        np.testing.assert_allclose(
            values, _expected(sample, batch), rtol=0, atol=1e-12
        )
        assert backend.executor.timeout_count == 1
        assert backend.executor.resurrection_count == 1
        backend.close()

    def test_straggler_finishes(self, sample, batch):
        """A slow shard is not an error — it just finishes late."""
        injector = FaultInjector(
            FaultPlan.single("shard", "slow", shard=2, seconds=0.05)
        )
        kde, backend = _sharded(sample, faults=injector)
        values = kde.selectivity_batch(batch)
        np.testing.assert_allclose(
            values, _expected(sample, batch), rtol=0, atol=1e-12
        )
        assert injector.fired("shard", "slow") == 1
        assert backend.executor.retry_count == 0
        backend.close()


class TestSharedMemoryFaults:
    def test_corruption_is_self_healed(self, sample, batch):
        """Scribbled shared memory is repaired by the publication guard
        before dispatch, not served as wrong estimates."""
        injector = FaultInjector(FaultPlan.single("shm", "corrupt", at=2))
        kde, backend = _sharded(sample, faults=injector)
        first = kde.selectivity_batch(batch)  # draw 1: publishes cleanly
        second = kde.selectivity_batch(batch)  # draw 2: corrupt + repair
        np.testing.assert_array_equal(first, second)
        assert backend.executor.republication_count == 1
        backend.close()

    def test_detach_consumes_an_attempt(self, sample, batch):
        injector = FaultInjector(FaultPlan.single("shm", "detach"))
        kde, backend = _sharded(sample, faults=injector)
        values = kde.selectivity_batch(batch)
        np.testing.assert_allclose(
            values, _expected(sample, batch), rtol=0, atol=1e-12
        )
        assert backend.executor.retry_count >= 1
        backend.close()


class TestRetryExhaustion:
    def test_exhausted_budget_raises_shard_execution_error(self, sample):
        """A fault that outlives the whole retry budget surfaces as
        ShardExecutionError with the infra failure as its cause."""
        executor = ShardedSampleExecutor(
            shards=2,
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, jitter=0.0
            ),
            faults=FaultInjector(
                FaultPlan.single("shard", "crash", shard=0, times=2)
            ),
        )
        with pytest.raises(ShardExecutionError, match="2 attempt"):
            executor.run(_shard_sum, sample, None)
        assert executor.resurrection_count == 2
        executor.close()


# ----------------------------------------------------------------------
# Worker-exception semantics (satellite: cancel + first exception)
# ----------------------------------------------------------------------
def _shard_sum(sample, start, stop, payload):
    return sample[start:stop].sum(axis=0)


def _failing_shard(sample, start, stop, payload):
    """Raises on shard 0; later shards record a marker then compute."""
    marker_dir = payload
    if start == 0:
        raise ValueError(f"bad shard [{start}:{stop})")
    with open(
        os.path.join(marker_dir, f"{start}-{stop}.ran"), "w"
    ) as handle:
        handle.write("ran")
    return sample[start:stop].sum(axis=0)


class TestWorkerExceptions:
    def test_first_exception_surfaces_unwrapped_without_retry(
        self, sample, tmp_path
    ):
        executor = ShardedSampleExecutor(
            shards=3, retry=FAST_RETRY
        )
        with pytest.raises(ValueError, match=r"bad shard \[0:"):
            executor.run(_failing_shard, sample, str(tmp_path))
        assert executor.retry_count == 0
        executor.close()

    def test_outstanding_shards_are_cancelled(self, sample, tmp_path):
        """With one worker and many shards, the failure of shard 0 must
        cancel the queued tail instead of running it to completion."""
        executor = ShardedSampleExecutor(
            shards=8, max_workers=1, retry=FAST_RETRY
        )
        with pytest.raises(ValueError, match="bad shard"):
            executor.run(_failing_shard, sample, str(tmp_path))
        # The pool pre-queues at most a couple of tasks past the running
        # one; everything still pending must have been cancelled.
        ran = list(tmp_path.glob("*.ran"))
        assert len(ran) <= 3, f"expected cancelled tail, got {ran}"
        executor.close()


class TestBreakerIntegration:
    def test_breaker_cycle_in_exported_metrics(self, sample, batch):
        """Acceptance: closed → open → half-open → closed, with every
        transition exported exactly once and inline answers in between."""
        clock = [0.0]
        registry = MetricsRegistry()
        backend = ShardedBackend(
            shards=2,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(
                recovery_after=30.0, clock=lambda: clock[0]
            ),
        )
        kde = KernelDensityEstimator(
            sample,
            scott_bandwidth(sample),
            backend=backend,
            metrics=registry,
        )
        expected = _expected(sample, batch)
        np.testing.assert_allclose(
            kde.selectivity_batch(batch), expected, rtol=0, atol=1e-12
        )

        # Kill the pool; with a one-attempt budget the breaker opens.
        pool = backend.executor._pool
        for process in pool._processes.values():
            process.kill()
        with pytest.warns(RuntimeWarning, match="falling back to inline"):
            np.testing.assert_allclose(
                kde.selectivity_batch(batch), expected, rtol=0, atol=1e-12
            )
        labels = {"component": "backend.sharded"}
        assert registry.gauge("breaker.state", labels).value == 1.0

        # While open, answers come from the inline path (no pool).
        np.testing.assert_allclose(
            kde.selectivity_batch(batch), expected, rtol=0, atol=1e-12
        )
        assert backend.executor._pool is None

        # After the window, the half-open probe succeeds and re-arms.
        clock[0] = 31.0
        np.testing.assert_allclose(
            kde.selectivity_batch(batch), expected, rtol=0, atol=1e-12
        )
        assert backend.breaker.state == "closed"
        assert backend.executor._pool is not None
        assert registry.gauge("breaker.state", labels).value == 0.0
        for from_state, to_state in (
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ):
            assert (
                registry.counter_value(
                    "breaker.transitions",
                    {
                        **labels,
                        "from_state": from_state,
                        "to_state": to_state,
                    },
                )
                == 1
            ), (from_state, to_state)
        backend.close()


# ----------------------------------------------------------------------
# Seeded chaos sweep (Benchmarks workflow only)
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seeded_chaos_sweep_stays_correct(seed, rng):
    """Random (but reproducible) crash/straggler storms never change
    results: every batch stays within 1e-12 of the numpy reference."""
    sample = rng.normal(size=(250, 3))
    plan = FaultPlan.seeded(
        seed, draws=24, crash=0.15, slow=0.2, slow_seconds=0.01
    )
    injector = FaultInjector(plan)
    retry = RetryPolicy(
        max_attempts=4, shard_timeout=20.0, backoff_base=0.0, jitter=0.0
    )
    backend = ShardedBackend(shards=3, retry=retry, faults=injector)
    kde = KernelDensityEstimator(
        sample, scott_bandwidth(sample), backend=backend
    )
    reference = KernelDensityEstimator(
        sample, scott_bandwidth(sample), backend=NumpyBackend()
    )
    for round_index in range(4):
        lows = rng.uniform(-2.0, 0.0, size=(20, 3))
        batch = QueryBatch(lows, lows + rng.uniform(0.5, 2.0, size=(20, 3)))
        np.testing.assert_allclose(
            kde.selectivity_batch(batch),
            reference.selectivity_batch(batch),
            rtol=0,
            atol=1e-12,
        )
    backend.close()
