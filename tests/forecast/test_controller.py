"""ProactiveController: forecast-driven actuation, deterministic clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends.sharded import ShardedBackend
from repro.core.model import SelfTuningConfig, SelfTuningKDE
from repro.forecast import ControllerConfig, ProactiveController
from repro.geometry import Box
from repro.obs.metrics import MetricsRegistry
from repro.serve import ModelRegistry, SnapshotServer

TABLE = "t"
COLUMNS = ("a", "b")


class _StubLaneStats:
    def __init__(self, requests):
        self.requests = requests


class _StubFrontend:
    """Just enough surface for the controller's demand/region taps."""

    def __init__(self):
        self.requests = 0
        self.boxes = []

    def stats(self, table, columns):
        return _StubLaneStats(self.requests)

    def recent_queries(self, table, columns):
        return list(self.boxes)


@pytest.fixture
def metrics():
    return MetricsRegistry()


def _stack(metrics, reader_backend=None, model_config=None, sample=None):
    rng = np.random.default_rng(7)
    sample = (
        sample
        if sample is not None
        else rng.normal(0.3, 0.1, size=(128, len(COLUMNS)))
    )
    model = SelfTuningKDE(
        sample,
        model_config,
        bandwidth=np.full(sample.shape[1], 0.05),
        seed=0,
        metrics=metrics,
    )
    server = SnapshotServer(
        model, metrics=metrics, reader_backend=reader_backend
    )
    registry = ModelRegistry()
    registry.register(TABLE, COLUMNS, server)
    return model, server, registry


def _controller(registry, metrics, clock, frontend=None, **overrides):
    return ProactiveController(
        registry,
        config=ControllerConfig(**overrides),
        metrics=metrics,
        frontend=frontend,
        clock=lambda: clock[0],
    )


class TestForecastScaling:
    def test_scales_ahead_of_a_ramp(self, metrics):
        model, server, registry = _stack(
            metrics, reader_backend=lambda: ShardedBackend(shards=1)
        )
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock,
            queries_per_shard=100.0, max_shards=4, warm_on_publish=False,
        )
        controller.step()  # baseline
        probe = Box((0.2, 0.2), (0.4, 0.4))
        shards_seen = []
        for demand in (100, 200, 300):
            for _ in range(demand):
                server.estimate(probe)
            clock[0] += 1.0
            controller.step()
            shards_seen.append(server.published.reader._backend.shards)
        # The linear forecaster extrapolates the ramp: by the 300/s step
        # the predicted rate exceeds the measured one, so the pool is
        # sized for the forecast, not the past.
        assert shards_seen[-1] == 4
        assert shards_seen == sorted(shards_seen)
        assert any(a.kind == "scale" for a in controller.actions)

    def test_scale_down_needs_patience(self, metrics):
        model, server, registry = _stack(
            metrics, reader_backend=lambda: ShardedBackend(shards=1)
        )
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock,
            forecaster="moving-average", window=1,
            queries_per_shard=100.0, max_shards=4,
            scale_down_patience=2, warm_on_publish=False,
        )
        controller.step()
        probe = Box((0.2, 0.2), (0.4, 0.4))
        for _ in range(400):
            server.estimate(probe)
        clock[0] += 1.0
        controller.step()
        backend = server.published.reader._backend
        assert backend.shards == 4
        # One quiet interval must NOT shrink (patience 2)...
        clock[0] += 1.0
        controller.step()
        assert backend.shards == 4
        # ...the second consecutive one does.
        clock[0] += 1.0
        controller.step()
        assert backend.shards == 1

    def test_first_step_only_baselines(self, metrics):
        model, server, registry = _stack(
            metrics, reader_backend=lambda: ShardedBackend(shards=1)
        )
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock, warm_on_publish=False
        )
        assert controller.step() == []


class TestWarming:
    def test_warms_each_new_publication(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="grid")
        clock = [0.0]
        controller = _controller(registry, metrics, clock)
        assert controller.step() == []  # baseline: counters only
        clock[0] += 1.0
        # First real step warms the initial publication.
        actions = controller.step()
        assert [a.kind for a in actions] == ["warm"]
        clock[0] += 1.0
        assert controller.step() == []  # same sequence → no rewarm
        server.publish()
        clock[0] += 1.0
        actions = controller.step()
        assert [a.kind for a in actions] == ["warm"]

    def test_cached_reader_warms_with_frontend_boxes(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="cached")
        frontend = _StubFrontend()
        frontend.boxes = [Box((0.1, 0.1), (0.5, 0.5))]
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock, frontend=frontend
        )
        controller.step()  # baseline
        clock[0] += 1.0
        actions = controller.step()
        assert [a.kind for a in actions] == ["warm"]
        assert actions[0].detail["queries"] == 1
        # The warmed CDF terms serve the very boxes that were forecast.
        backend = server.published.reader._backend
        assert len(backend.cache) > 0

    def test_cached_reader_without_boxes_reports_no_warm(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="cached")
        clock = [0.0]
        controller = _controller(registry, metrics, clock)
        controller.step()  # baseline
        clock[0] += 1.0
        assert controller.step() == []  # nothing to warm a cache with


class TestPublishAhead:
    def test_publishes_before_a_predicted_spike(self, metrics):
        config = SelfTuningConfig(adapt_bandwidth=False, maintain_sample=False)
        model, server, registry = _stack(
            metrics, reader_backend="grid", model_config=config
        )
        clock = [0.0]
        # The linear forecaster predicts rate + slope * horizon, so on a
        # measured ramp 10 -> 60 the prediction (~110/s) clears a 1.5x
        # spike factor but not 2x.
        controller = _controller(registry, metrics, clock, spike_factor=1.5)
        controller.step()
        # Feedback absorbed but (epochs frozen) never auto-published.
        server.feedback(Box((0.2, 0.2), (0.4, 0.4)), 0.3)
        assert server.staleness == 1
        probe = Box((0.2, 0.2), (0.4, 0.4))
        publications = server.publish_count
        # Ramping demand → linear forecast predicts >= 2x current rate.
        for demand in (10, 60, 160):
            for _ in range(demand):
                server.estimate(probe)
            clock[0] += 1.0
            controller.step()
        assert server.publish_count > publications
        assert any(a.kind == "publish" for a in controller.actions)
        assert server.staleness == 0

    def test_no_publish_when_not_stale(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="grid")
        clock = [0.0]
        controller = _controller(registry, metrics, clock)
        controller.step()
        probe = Box((0.2, 0.2), (0.4, 0.4))
        for demand in (10, 60, 160):
            for _ in range(demand):
                server.estimate(probe)
            clock[0] += 1.0
            controller.step()
        assert not any(a.kind == "publish" for a in controller.actions)


class TestDriftRetune:
    def _drifted_stack(self, metrics):
        config = SelfTuningConfig(adapt_bandwidth=False, maintain_sample=False)
        model, server, registry = _stack(
            metrics, reader_backend="grid", model_config=config
        )
        return model, server, registry

    def _drive_drifted_feedback(self, server, count=12):
        # Query boxes far from the sample mean (0.3 +/- 0.1): the
        # serving-path feedback traces carry these bounds into the
        # controller's drift detector and retune workload.
        for i in range(count):
            lo = 0.75 + 0.01 * (i % 3)
            box = Box((lo, lo), (lo + 0.1, lo + 0.1))
            server.feedback(box, 0.02)

    def test_retunes_bandwidth_on_drift(self, metrics):
        model, server, registry = self._drifted_stack(metrics)
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock,
            drift_threshold=2.0, min_drift_samples=8, drift_window=16,
            min_retune_feedbacks=4, retune_cooldown=0.0, retune_starts=1,
        )
        controller.step()
        before = model.bandwidth.copy()
        self._drive_drifted_feedback(server)
        clock[0] += 1.0
        actions = controller.step()
        kinds = [a.kind for a in actions]
        assert "retune" in kinds
        assert not np.allclose(before, model.bandwidth)
        # The retuned state is published, and warm runs after retune so
        # the controller-published reader is never left cold.
        assert server.staleness == 0
        assert kinds.index("retune") < kinds.index("warm")
        # Rebase: the same drifted region must not retune again.
        clock[0] += 1.0
        assert not any(a.kind == "retune" for a in controller.step())

    def test_custom_retune_override(self, metrics):
        model, server, registry = self._drifted_stack(metrics)
        clock = [0.0]
        seen = []
        controller = ProactiveController(
            registry,
            config=ControllerConfig(
                drift_threshold=2.0, min_drift_samples=8,
                min_retune_feedbacks=4, retune_cooldown=0.0,
            ),
            metrics=metrics,
            clock=lambda: clock[0],
            retune=lambda srv, workload: seen.append((srv, len(workload))),
        )
        controller.step()
        self._drive_drifted_feedback(server)
        clock[0] += 1.0
        controller.step()
        assert seen and seen[0][0] is server and seen[0][1] >= 4

    def test_cooldown_blocks_repeat_retunes(self, metrics):
        model, server, registry = self._drifted_stack(metrics)
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock,
            drift_threshold=2.0, min_drift_samples=4, drift_window=16,
            min_retune_feedbacks=4, retune_cooldown=100.0, retune_starts=1,
        )
        controller.step()
        self._drive_drifted_feedback(server)
        clock[0] += 1.0
        assert any(a.kind == "retune" for a in controller.step())
        # Fresh drift inside the cooldown window: no second retune.
        self._drive_drifted_feedback(server, count=8)
        clock[0] += 1.0
        assert not any(a.kind == "retune" for a in controller.step())


class TestLifecycle:
    def test_reregistered_server_resets_state(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="grid")
        clock = [0.0]
        controller = _controller(registry, metrics, clock)
        controller.step()
        replacement = SnapshotServer(
            SelfTuningKDE(
                np.random.default_rng(1).normal(size=(64, 2)),
                seed=1,
                metrics=metrics,
            ),
            metrics=metrics,
            reader_backend="grid",
        )
        registry.register(TABLE, COLUMNS, replacement, replace=True)
        clock[0] += 1.0
        # Fresh state: the replacement gets its own baseline step first,
        # then its initial publication is warmed.
        assert controller.step() == []
        clock[0] += 1.0
        actions = controller.step()
        assert [a.kind for a in actions] == ["warm"]

    def test_threaded_loop_runs_and_stops(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="grid")
        controller = ProactiveController(
            registry,
            config=ControllerConfig(interval=0.01),
            metrics=metrics,
        )
        import time as _time

        with controller:
            deadline = _time.monotonic() + 2.0
            while not controller.actions and _time.monotonic() < deadline:
                _time.sleep(0.005)
        assert any(a.kind == "warm" for a in controller.actions)

    def test_demand_sums_server_and_frontend(self, metrics):
        model, server, registry = _stack(metrics, reader_backend="grid")
        frontend = _StubFrontend()
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock, frontend=frontend,
            warm_on_publish=False,
        )
        controller.step()
        frontend.requests = 50
        server.estimate(Box((0.2, 0.2), (0.4, 0.4)))
        clock[0] += 1.0
        controller.step()
        label = {"model": f"{TABLE}/{','.join(COLUMNS)}"}
        assert metrics.gauge("forecast.rate", label).value == pytest.approx(
            51.0
        )


class TestJoinKeyAccounting:
    def test_join_sample_model_gets_its_own_demand_state(self, metrics):
        """A join-signature-keyed server is tracked per ModelKey: the
        controller passes the key itself to the front-end taps and
        exports its demand gauge under the join label."""
        from repro.serve import ModelKey

        class _KeyAwareFrontend:
            def __init__(self):
                self.stat_calls = []
                self.requests = 0

            def stats(self, *args):
                self.stat_calls.append(args)
                return _StubLaneStats(self.requests)

            def recent_queries(self, *args):
                return []

        rng = np.random.default_rng(5)
        key = ModelKey.for_join_sample(
            [("fact", "k", "dim", "k")], ("fact.k", "dim.k")
        )
        server = SnapshotServer(
            SelfTuningKDE(rng.normal(size=(64, 2)), seed=2, metrics=metrics),
            metrics=metrics,
        )
        registry = ModelRegistry()
        registry.register(key, server)
        frontend = _KeyAwareFrontend()
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock, frontend=frontend,
            warm_on_publish=False,
        )
        controller.step()
        frontend.requests = 30
        clock[0] += 1.0
        controller.step()
        # Join kinds are passed as the key itself (no (table, columns)
        # legacy splitting is possible for a multi-table signature).
        assert (key,) in frontend.stat_calls
        label = {"model": key.label}
        assert metrics.gauge("forecast.rate", label).value == pytest.approx(
            30.0
        )

    def test_table_kind_keeps_legacy_two_arg_taps(self, metrics):
        """Single-table keys keep calling stats(table, columns), so
        pre-refactor front-end doubles (and the real front end's legacy
        spelling) still work."""
        model, server, registry = _stack(metrics, reader_backend="grid")

        calls = []

        class _Recording(_StubFrontend):
            def stats(self, table, columns):
                calls.append((table, columns))
                return super().stats(table, columns)

        frontend = _Recording()
        clock = [0.0]
        controller = _controller(
            registry, metrics, clock, frontend=frontend,
            warm_on_publish=False,
        )
        controller.step()
        assert (TABLE, COLUMNS) in calls
