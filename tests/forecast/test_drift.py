"""Drift detector: z-score mechanics, volume criterion, rebase."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import DriftDetector


@pytest.fixture
def detector():
    d = DriftDetector(threshold=3.0, window=32, min_samples=4)
    d.set_reference(mean=(0.0, 0.0), scale=(1.0, 2.0))
    return d


class TestScoring:
    def test_no_drift_at_reference(self, detector):
        for _ in range(8):
            detector.observe((0.1, -0.1))
        report = detector.check()
        assert report.score < 1.0
        assert not report.drifted

    def test_zscore_uses_per_dimension_scale(self, detector):
        # Shift of 4 in dim 0 (scale 1) vs 4 in dim 1 (scale 2):
        # dimension scores must be 4 and 2.
        for _ in range(4):
            detector.observe((4.0, 4.0))
        report = detector.check()
        assert report.dimension_scores == pytest.approx((4.0, 2.0))
        assert report.score == pytest.approx(4.0)
        assert report.drifted

    def test_min_samples_gate(self, detector):
        detector.observe((100.0, 100.0))
        report = detector.check()
        assert report.score > 3.0
        assert not report.drifted  # only 1 < min_samples=4 centers

    def test_reference_from_sample(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(5.0, 2.0, size=(4096, 3))
        d = DriftDetector(threshold=3.0, min_samples=2)
        d.set_reference_from_sample(sample)
        d.observe((5.0, 5.0, 5.0))
        d.observe((5.0, 5.0, 5.0))
        assert d.check().score < 0.5
        d.observe((25.0, 5.0, 5.0))  # 10 sigma away in dim 0
        d.observe((25.0, 5.0, 5.0))
        assert d.check().drifted

    def test_check_requires_reference(self):
        with pytest.raises(RuntimeError):
            DriftDetector().check()

    def test_empty_window_is_clean(self, detector):
        report = detector.check()
        assert report.samples == 0
        assert not report.drifted


class TestVolume:
    def test_volume_blowup_is_drift(self, detector):
        # Anchor the volume reference near 1, then blow it up 10x:
        # centroid stays put but the detector must still flag it.
        for _ in range(4):
            detector.observe((0.0, 0.0), volume=1.0)
        detector.check()  # anchors the volume reference
        for _ in range(32):  # roll the window over to wide boxes
            detector.observe((0.0, 0.0), volume=10.0)
        report = detector.check()
        assert report.score < 3.0
        assert report.volume_ratio > 8.0
        assert report.drifted

    def test_volume_criterion_disabled(self):
        d = DriftDetector(threshold=3.0, min_samples=2, volume_factor=None)
        d.set_reference((0.0,), (1.0,))
        for _ in range(4):
            d.observe((0.0,), volume=1.0)
        d.check()
        for _ in range(64):
            d.observe((0.0,), volume=1000.0)
        assert not d.check().drifted


class TestRebase:
    def test_rebase_clears_drift(self, detector):
        for _ in range(8):
            detector.observe((10.0, 10.0))
        assert detector.check().drifted
        detector.rebase()
        assert detector.samples == 0
        for _ in range(4):
            detector.observe((10.0, 10.0))
        # The recent mean became the new reference centroid.
        assert not detector.check().drifted

    def test_rebase_from_sample(self, detector):
        rng = np.random.default_rng(1)
        detector.rebase(sample=rng.normal(50.0, 1.0, size=(1024, 2)))
        for _ in range(4):
            detector.observe((50.0, 50.0))
        assert not detector.check().drifted

    def test_dimension_mismatch_raises(self, detector):
        detector.observe((1.0, 2.0, 3.0))
        with pytest.raises(ValueError, match="dimensions"):
            detector.check()


class TestValidation:
    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)

    def test_volume_factor_exceeds_one(self):
        with pytest.raises(ValueError):
            DriftDetector(volume_factor=1.0)
