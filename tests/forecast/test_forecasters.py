"""Known-answer tests for the demand forecasters."""

from __future__ import annotations

import pytest

from repro.forecast import (
    EwmaForecaster,
    LinearTrendForecaster,
    MovingAverageForecaster,
    make_forecaster,
)


class TestMovingAverage:
    def test_mean_of_window(self):
        f = MovingAverageForecaster(window=3)
        for t, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            f.observe(float(t), v)
        # Window of 3 → mean(20, 30, 40) = 30, horizon-flat.
        assert f.forecast(0.0) == pytest.approx(30.0)
        assert f.forecast(5.0) == pytest.approx(30.0)

    def test_partial_window(self):
        f = MovingAverageForecaster(window=8)
        f.observe(0.0, 4.0)
        f.observe(1.0, 8.0)
        assert f.forecast() == pytest.approx(6.0)


class TestEwma:
    def test_recursive_level(self):
        f = EwmaForecaster(alpha=0.5)
        f.observe(0.0, 10.0)
        f.observe(1.0, 20.0)
        # level = 10 + 0.5 * (20 - 10) = 15
        assert f.forecast() == pytest.approx(15.0)
        f.observe(2.0, 15.0)
        assert f.forecast() == pytest.approx(15.0)

    def test_alpha_one_tracks_last_value(self):
        f = EwmaForecaster(alpha=1.0)
        for t, v in enumerate([3.0, 9.0, 27.0]):
            f.observe(float(t), v)
        assert f.forecast(10.0) == pytest.approx(27.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=1.5)


class TestLinearTrend:
    def test_exact_line_extrapolates(self):
        f = LinearTrendForecaster(window=4)
        for t in range(4):
            f.observe(float(t), 5.0 + 2.0 * t)  # value = 5 + 2t
        assert f.slope == pytest.approx(2.0)
        # At t_last=3 value is 11; horizon 2 → 5 + 2*5 = 15.
        assert f.forecast(2.0) == pytest.approx(15.0)

    def test_flat_series_has_zero_slope(self):
        f = LinearTrendForecaster(window=3)
        for t in range(5):
            f.observe(float(t), 7.0)
        assert f.slope == pytest.approx(0.0)
        assert f.forecast(100.0) == pytest.approx(7.0)

    def test_single_observation_is_flat(self):
        f = LinearTrendForecaster()
        f.observe(0.0, 42.0)
        assert f.forecast(3.0) == pytest.approx(42.0)


class TestContract:
    @pytest.mark.parametrize(
        "kind", ["moving-average", "ewma", "linear"]
    )
    def test_forecast_before_observe_raises(self, kind):
        f = make_forecaster(kind)
        with pytest.raises(ValueError):
            f.forecast()

    def test_timestamps_must_not_decrease(self):
        f = MovingAverageForecaster()
        f.observe(5.0, 1.0)
        with pytest.raises(ValueError):
            f.observe(4.0, 1.0)

    def test_negative_horizon_rejected(self):
        f = EwmaForecaster()
        f.observe(0.0, 1.0)
        with pytest.raises(ValueError):
            f.forecast(-1.0)

    def test_reset_forgets_history(self):
        f = LinearTrendForecaster()
        f.observe(0.0, 1.0)
        f.reset()
        assert f.observations == 0
        f.observe(0.0, 2.0)  # earlier timestamp fine after reset
        assert f.forecast() == pytest.approx(2.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("arima")
