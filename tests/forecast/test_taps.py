"""TraceTap: incremental polling, loss accounting, stage filtering."""

from __future__ import annotations

import pytest

from repro.forecast import TraceTap
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EstimationTrace


def _trace(registry, stage="estimate", ts=None, bounds=None, actual=None):
    low, high = (bounds, tuple(b + 1.0 for b in bounds)) if bounds else (None, None)
    trace = EstimationTrace(
        query_id=registry.next_query_id(),
        predicted=0.25,
        backend="numpy",
        stage=stage,
        actual=actual,
        query_low=low,
        query_high=high,
        **({"timestamp": ts} if ts is not None else {}),
    )
    registry.record_trace(trace)
    return trace


@pytest.fixture
def registry():
    return MetricsRegistry(trace_capacity=8)


class TestPolling:
    def test_poll_returns_only_new_records(self, registry):
        tap = TraceTap(registry)
        _trace(registry)
        _trace(registry)
        sample = tap.poll()
        assert sample.count == 2
        assert sample.dropped == 0
        assert tap.poll().count == 0  # nothing new

    def test_tap_starts_at_current_total(self, registry):
        _trace(registry)
        tap = TraceTap(registry)
        assert tap.pending == 0
        assert tap.poll().count == 0

    def test_from_start_reads_history(self, registry):
        _trace(registry)
        tap = TraceTap(registry, from_start=True)
        assert tap.poll().count == 1

    def test_eviction_is_counted_not_silent(self, registry):
        tap = TraceTap(registry)
        for _ in range(12):  # capacity 8 → 4 evicted before the poll
            _trace(registry)
        sample = tap.poll()
        assert sample.count == 8
        assert sample.dropped == 4
        assert sample.observed == 12

    def test_independent_consumers(self, registry):
        tap_a = TraceTap(registry)
        tap_b = TraceTap(registry)
        _trace(registry)
        assert tap_a.poll().count == 1
        assert tap_b.poll().count == 1  # b's mark is its own

    def test_stage_filter_still_consumes_interval(self, registry):
        tap = TraceTap(registry)
        _trace(registry, stage="estimate")
        _trace(registry, stage="feedback", bounds=(0.0,), actual=0.5)
        sample = tap.poll(stage="feedback")
        assert len(sample.traces) == 1
        assert sample.count == 2  # whole interval consumed
        assert tap.poll().count == 0


class TestSampleProjections:
    def test_rate_from_timestamp_span(self, registry):
        tap = TraceTap(registry)
        for ts in (10.0, 11.0, 12.0):
            _trace(registry, ts=ts)
        # 3 records over 2 seconds → (3 - 1) / 2 = 1 record/second.
        assert tap.poll().rate() == pytest.approx(1.0)

    def test_rate_with_single_record_is_zero(self, registry):
        tap = TraceTap(registry)
        _trace(registry)
        assert tap.poll().rate() == 0.0

    def test_centers_and_volumes_skip_unbounded(self, registry):
        tap = TraceTap(registry)
        _trace(registry, bounds=(0.0, 2.0))
        _trace(registry)  # no bounds
        sample = tap.poll()
        assert sample.centers() == [(0.5, 2.5)]
        assert sample.volumes() == [pytest.approx(1.0)]

    def test_feedback_pairs(self, registry):
        tap = TraceTap(registry)
        _trace(registry, stage="feedback", bounds=(1.0,), actual=0.3)
        _trace(registry, stage="feedback", actual=0.4)  # no bounds → skipped
        _trace(registry, stage="estimate", bounds=(2.0,))  # wrong stage
        pairs = tap.poll().feedback_pairs()
        assert pairs == [((1.0,), (2.0,), 0.3)]
