"""MSCNRegressor: featurized query -> selectivity regression from feedback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import memory_budget_bytes
from repro.geometry import Box
from repro.learned import MSCNRegressor, mscn_hidden_budget


def _sample(rows=512, dimensions=2, seed=0):
    return np.random.default_rng(seed).normal(size=(rows, dimensions))


def _training_queries(sample, count, seed=1):
    rng = np.random.default_rng(seed)
    queries, truths = [], []
    for _ in range(count):
        center = sample[rng.integers(sample.shape[0])]
        width = rng.uniform(0.4, 1.2, size=sample.shape[1])
        query = Box(center - width, center + width)
        truth = float(
            np.all((sample >= query.low) & (sample <= query.high), axis=1)
            .mean()
        )
        queries.append(query)
        truths.append(truth)
    return queries, truths


def test_hidden_budget_respects_the_memory_budget():
    for dimensions in (1, 2, 4, 8):
        budget = memory_budget_bytes(dimensions)
        hidden = mscn_hidden_budget(dimensions, budget)
        assert hidden >= 2
        model = MSCNRegressor(
            sample=_sample(dimensions=dimensions), budget_bytes=budget
        )
        assert model.memory_bytes() <= budget


def test_untrained_prediction_is_the_prior():
    model = MSCNRegressor(sample=_sample(), prior=0.05)
    query = Box(low=[-1.0, -1.0], high=[1.0, 1.0])
    assert model.estimate(query) == pytest.approx(0.05, abs=1e-9)


def test_feedback_reduces_error_on_a_stable_workload():
    sample = _sample()
    model = MSCNRegressor(sample=sample, seed=0)
    queries, truths = _training_queries(sample, 200)
    before = np.mean(
        [abs(model.estimate(q) - t) for q, t in zip(queries, truths)]
    )
    model.feedback_many(queries, truths)
    after = np.mean(
        [abs(model.estimate(q) - t) for q, t in zip(queries, truths)]
    )
    assert after < before
    assert model.feedback_count == 200


def test_single_feedback_matches_protocol():
    model = MSCNRegressor(sample=_sample())
    query = Box(low=[-1.0, -1.0], high=[1.0, 1.0])
    model.estimate(query)
    model.feedback(query, 0.3)
    assert model.feedback_count == 1
    with pytest.raises(ValueError):
        model.feedback(query, -0.1)


def test_feedback_many_accepts_generators():
    model = MSCNRegressor(sample=_sample())
    queries, truths = _training_queries(_sample(), 8)
    model.feedback_many(iter(queries), iter(truths))
    with pytest.raises(ValueError):
        model.feedback_many(queries, (t for t in truths[:-1]))


def test_estimates_stay_probabilities_under_training():
    sample = _sample()
    model = MSCNRegressor(sample=sample, seed=0, learning_rate=0.2)
    queries, truths = _training_queries(sample, 100)
    model.feedback_many(queries, truths)
    for query in queries[:20]:
        assert 0.0 <= model.estimate(query) <= 1.0


def test_bounds_can_be_passed_explicitly():
    bounds = Box(low=[-3.0, -3.0], high=[3.0, 3.0])
    model = MSCNRegressor(bounds=bounds)
    assert 0.0 <= model.estimate(Box(low=[-1.0, -1.0], high=[1.0, 1.0])) <= 1.0


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        MSCNRegressor()  # neither bounds nor sample
    with pytest.raises(ValueError):
        MSCNRegressor(sample=_sample(), hidden=0)
