"""NaruEstimator: discretized autoregressive chain + progressive sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import memory_budget_bytes
from repro.geometry import Box
from repro.learned import NaruEstimator, naru_bin_budget


def _correlated_sample(rows=1024, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(rows, 3))
    base[:, 1] = 0.8 * base[:, 0] + 0.2 * base[:, 1]
    base[:, 2] = 0.5 * base[:, 1] + 0.5 * base[:, 2]
    return base


def test_bin_budget_respects_the_memory_budget():
    for dimensions in (1, 2, 3, 5, 8):
        budget = memory_budget_bytes(dimensions)
        bins = naru_bin_budget(dimensions, budget)
        assert bins >= 2
        model = NaruEstimator(
            np.random.default_rng(0).normal(size=(256, dimensions)),
            budget_bytes=budget,
        )
        assert model.memory_bytes() <= budget


def test_estimates_are_deterministic_per_query():
    model = NaruEstimator(_correlated_sample(), seed=3)
    query = Box(low=[-1.0, -1.0, -1.0], high=[1.0, 1.0, 1.0])
    first = model.estimate(query)
    # Interleave another query: the per-call RNG must not drift.
    model.estimate(Box(low=[0.0, 0.0, 0.0], high=[0.5, 0.5, 0.5]))
    assert model.estimate(query) == first


def test_full_domain_query_has_selectivity_one():
    sample = _correlated_sample()
    model = NaruEstimator(sample)
    bounds = Box.bounding(sample, margin=1.0)
    assert model.estimate(bounds) == pytest.approx(1.0, abs=1e-6)


def test_empty_region_has_selectivity_zero():
    model = NaruEstimator(_correlated_sample())
    assert model.estimate(
        Box(low=[50.0, 50.0, 50.0], high=[60.0, 60.0, 60.0])
    ) == pytest.approx(0.0, abs=1e-9)


def test_tracks_true_selectivity_on_correlated_data():
    sample = _correlated_sample(rows=2048)
    model = NaruEstimator(sample, paths=256, seed=0)
    rng = np.random.default_rng(9)
    errors = []
    for _ in range(30):
        center = sample[rng.integers(sample.shape[0])]
        width = rng.uniform(0.6, 1.4, size=3)
        query = Box(center - width, center + width)
        truth = float(
            np.all((sample >= query.low) & (sample <= query.high), axis=1)
            .mean()
        )
        errors.append(abs(model.estimate(query) - truth))
    # The chain models the sample itself, so it should track the
    # sample's own selectivities closely (the Markov truncation and the
    # in-bin uniformity assumption bound how close).
    assert float(np.mean(errors)) < 0.08


def test_feedback_validates_then_discards():
    model = NaruEstimator(_correlated_sample())
    query = Box(low=[-1.0, -1.0, -1.0], high=[1.0, 1.0, 1.0])
    before = model.estimate(query)
    model.feedback(query, 0.5)
    assert model.estimate(query) == before
    with pytest.raises(ValueError):
        model.feedback(query, 1.5)


def test_constant_column_is_handled():
    sample = _correlated_sample(rows=256)
    sample[:, 1] = 2.0
    model = NaruEstimator(sample)
    hit = Box(low=[-10.0, 1.5, -10.0], high=[10.0, 2.5, 10.0])
    miss = Box(low=[-10.0, 3.0, -10.0], high=[10.0, 4.0, 10.0])
    assert model.estimate(hit) == pytest.approx(1.0, abs=1e-6)
    assert model.estimate(miss) == pytest.approx(0.0, abs=1e-9)


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        NaruEstimator(np.empty((0, 3)))
    with pytest.raises(ValueError):
        NaruEstimator(_correlated_sample(), bins=1)
    with pytest.raises(ValueError):
        NaruEstimator(_correlated_sample(), paths=0)
    with pytest.raises(ValueError):
        NaruEstimator(_correlated_sample(), smoothing=-1.0)
