"""JSON and Prometheus exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import dump_json, export_metrics, to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EstimationTrace


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("backend.queries", {"backend": "numpy"}).inc(7)
    registry.gauge("cache.entries", {"backend": "cached"}).set(12)
    histogram = registry.histogram("latency", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.05, 5.0):
        histogram.observe(value)
    registry.record_span(("estimate_batch",), 0.5, {"backend": "numpy"})
    registry.record_trace(
        EstimationTrace(query_id=1, predicted=0.1, backend="numpy")
    )
    return registry


def test_to_json_round_trips_the_snapshot():
    registry = _populated_registry()
    snapshot = json.loads(to_json(registry))
    assert snapshot["counters"]["backend.queries{backend=numpy}"] == 7.0
    assert snapshot["gauges"]["cache.entries{backend=cached}"] == 12.0
    assert snapshot["histograms"]["latency"]["count"] == 3
    assert snapshot["spans"]["estimate_batch{backend=numpy}"]["seconds"] == 0.5
    assert len(snapshot["traces"]) == 1
    assert snapshot["traces"][0]["backend"] == "numpy"


def test_dump_json_writes_the_file_and_warns_once(tmp_path, monkeypatch):
    from repro.obs import export as export_module

    monkeypatch.setattr(export_module, "_warned_dump_json", False)
    registry = _populated_registry()
    path = tmp_path / "metrics.json"
    with pytest.warns(DeprecationWarning, match="export_metrics"):
        assert dump_json(registry, str(path)) == str(path)
    snapshot = json.loads(path.read_text())
    assert snapshot["counters"]["backend.queries{backend=numpy}"] == 7.0
    # Single shot: the second call stays quiet.
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error", DeprecationWarning)
        dump_json(registry, str(path))


def test_prometheus_text_format():
    text = to_prometheus(_populated_registry())
    lines = text.splitlines()
    assert "# TYPE backend_queries counter" in lines
    assert 'backend_queries{backend="numpy"} 7' in lines
    assert 'cache_entries{backend="cached"} 12' in lines
    # Histogram buckets are cumulative and end with +Inf.
    assert 'latency_bucket{le="0.001"} 1' in lines
    assert 'latency_bucket{le="0.01"} 1' in lines
    assert 'latency_bucket{le="0.1"} 2' in lines
    assert 'latency_bucket{le="+Inf"} 3' in lines
    assert "latency_count 3" in lines
    # Spans export as counter pairs labelled by path.
    assert (
        'span_seconds_total{path="estimate_batch{backend=numpy}"} 0.5'
        in lines
    )
    assert 'span_count{path="estimate_batch{backend=numpy}"} 1' in lines
    assert text.endswith("\n")


def test_prometheus_empty_registry_is_empty_string():
    assert to_prometheus(MetricsRegistry()) == ""


class TestExportMetrics:
    """The unified exporter the CLI and bench harness now go through."""

    def test_json_format_subsumes_the_snapshot(self):
        registry = _populated_registry()
        document = json.loads(export_metrics(registry, format="json"))
        assert document["counters"]["backend.queries{backend=numpy}"] == 7.0
        assert document["gauges"]["cache.entries{backend=cached}"] == 12.0
        # The devices section is always present, even with no device work.
        assert document["devices"] == {}

    def test_json_includes_device_profiles(self):
        registry = _populated_registry()
        registry.histogram(
            "device.kernel.seconds",
            {"device": "gpu", "kernel": "contribution"},
        ).observe(0.25)
        document = json.loads(export_metrics(registry, format="json"))
        profile = document["devices"]["gpu"]
        assert profile["kernels"]["contribution"]["launches"] == 1
        assert profile["kernel_seconds"] == pytest.approx(0.25)

    def test_prometheus_format_matches_to_prometheus(self):
        registry = _populated_registry()
        assert export_metrics(registry, format="prometheus") == to_prometheus(
            registry
        )

    def test_path_writes_the_document(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "metrics.json"
        rendered = export_metrics(registry, path=str(path))
        assert path.read_text() == rendered + "\n"
        assert json.loads(path.read_text())["counters"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="prometheus"):
            export_metrics(MetricsRegistry(), format="xml")
