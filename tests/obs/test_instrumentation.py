"""End-to-end instrumentation: estimator, backends, device, feedback.

The contract under test: with a live registry every entry point emits
spans, counters and one :class:`EstimationTrace` per query; with the
process default (disabled) registry, nothing is recorded anywhere.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.model import SelfTuningKDE
from repro.db.feedback import FeedbackLoop
from repro.db.table import Table
from repro.device.kde_device import DeviceKDE
from repro.device.runtime import DeviceContext
from repro.geometry import Box, QueryBatch
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
)

BACKENDS = ("numpy", "sharded", "cached")


@pytest.fixture
def batch(rng) -> QueryBatch:
    centers = rng.normal(size=(6, 3))
    widths = rng.uniform(0.2, 1.0, size=(6, 3))
    return QueryBatch(low=centers - widths, high=centers + widths)


def _run_backend(sample, batch, backend, registry):
    estimator = KernelDensityEstimator(
        sample,
        scott_bandwidth(sample),
        backend=backend,
        metrics=registry,
    )
    with warnings.catch_warnings():
        # The sharded backend may fall back inline in sandboxes; the
        # instrumentation contract is identical either way.
        warnings.simplefilter("ignore", RuntimeWarning)
        estimates = estimator.selectivity_batch(batch)
    estimator.backend.close()
    return estimates


class TestTraceEquivalenceAcrossBackends:
    def test_every_backend_emits_one_trace_per_query(
        self, small_sample, batch
    ):
        traces = {}
        estimates = {}
        for backend in BACKENDS:
            registry = MetricsRegistry()
            estimates[backend] = _run_backend(
                small_sample, batch, backend, registry
            )
            traces[backend] = list(registry.traces)

        for backend in BACKENDS:
            records = traces[backend]
            assert len(records) == len(batch)
            for trace in records:
                assert trace.stage == "estimate"
                assert trace.backend == backend
                assert trace.bandwidth_epoch == 1  # set once at build
                assert trace.sample_epoch == 0
            # Trace ids are the registry's monotone query sequence.
            assert [t.query_id for t in records] == list(
                range(1, len(batch) + 1)
            )

        # The predicted selectivities in the traces agree across
        # backends exactly as the estimates themselves do.
        for backend in ("sharded", "cached"):
            np.testing.assert_allclose(
                [t.predicted for t in traces[backend]],
                [t.predicted for t in traces["numpy"]],
                atol=1e-12,
            )
        for backend in BACKENDS:
            np.testing.assert_array_equal(
                [t.predicted for t in traces[backend]], estimates[backend]
            )

    def test_backend_counters_and_spans(self, small_sample, batch):
        for backend in BACKENDS:
            registry = MetricsRegistry()
            _run_backend(small_sample, batch, backend, registry)
            assert registry.counter_value(
                "estimator.queries", {"backend": backend}
            ) == len(batch)
            assert registry.counter_value(
                "backend.queries", {"backend": backend}
            ) == len(batch)
            summary = registry.span_summary()
            assert (
                summary[f"estimate_batch{{backend={backend}}}"]["count"] == 1
            )

    def test_sharded_traces_carry_shard_seconds(self, small_sample, batch):
        registry = MetricsRegistry()
        _run_backend(small_sample, batch, "sharded", registry)
        records = list(registry.traces)
        assert records, "sharded run must emit traces"
        for trace in records:
            assert trace.shard_seconds is not None
            assert len(trace.shard_seconds) >= 1
            assert all(s >= 0.0 for s in trace.shard_seconds)
        # Each shard's timing also lands as a child span of the batch.
        shard_spans = [
            key
            for key in registry.span_summary()
            if "/shard[" in key and key.startswith("estimate_batch")
        ]
        assert len(shard_spans) == len(records[0].shard_seconds)

    def test_cached_traces_report_hit_miss_deltas(self, small_sample, batch):
        registry = MetricsRegistry()
        estimator = KernelDensityEstimator(
            small_sample,
            scott_bandwidth(small_sample),
            backend="cached",
            metrics=registry,
        )
        estimator.selectivity_batch(batch)
        cold = list(registry.traces)
        estimator.selectivity_batch(batch)
        warm = list(registry.traces)[len(cold):]
        assert all(t.cache_misses > 0 for t in cold)
        assert all(t.cache_hits == 0 for t in cold)
        assert all(t.cache_hits > 0 for t in warm)
        assert all(t.cache_misses == 0 for t in warm)
        assert registry.sum_counters("cache.hits") > 0
        assert registry.counter_value(
            "cache.misses", {"backend": "cached"}
        ) > 0


class TestDisabledIsSilent:
    def test_nothing_recorded_without_enable(self, small_sample, batch):
        assert isinstance(get_registry(), NullRegistry)
        for backend in BACKENDS:
            estimates = _run_backend(small_sample, batch, backend, None)
            assert estimates.shape == (len(batch),)
        ambient = get_registry()
        assert list(ambient.iter_counters()) == []
        assert list(ambient.iter_histograms()) == []
        assert ambient.span_summary() == {}
        assert len(ambient.traces) == 0

    def test_enable_metrics_instruments_existing_models(
        self, small_sample, batch
    ):
        estimator = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        assert estimator.obs is get_registry()
        try:
            live = enable_metrics()
            estimator.selectivity_batch(batch)
            assert len(live.traces) == len(batch)
        finally:
            disable_metrics()
        # And stops again once disabled.
        estimator.selectivity_batch(batch)
        assert len(live.traces) == len(batch)


class TestDeviceTraces:
    def test_device_estimate_traces_carry_kernel_seconds(self, small_sample):
        registry = MetricsRegistry()
        context = DeviceContext.for_device("gpu", metrics=registry)
        kde = DeviceKDE(small_sample, context, metrics=registry)
        query = Box([-0.5] * 3, [0.5] * 3)
        kde.estimate(query)
        records = [
            t for t in registry.traces if t.backend.startswith("device-")
        ]
        assert len(records) == 1
        trace = records[0]
        assert trace.device_kernel_seconds
        assert all(
            seconds >= 0.0
            for seconds in trace.device_kernel_seconds.values()
        )
        assert registry.counter_value(
            "device.queries", {"device": context.spec.name}
        ) == 1
        # The modelled kernel time also lands in the shared histograms.
        kernel_histograms = [
            h
            for h in registry.iter_histograms()
            if h.name == "device.kernel.seconds"
        ]
        assert kernel_histograms

    def test_device_profile_unaffected_by_shared_registry(self, small_sample):
        """profile() reads the context's own registry, not the shared one."""
        shared = MetricsRegistry()
        context = DeviceContext.for_device("gpu", metrics=shared)
        kde = DeviceKDE(small_sample, context, metrics=shared)
        kde.estimate(Box([-0.5] * 3, [0.5] * 3))
        profile = context.profile()
        assert profile["kernel_seconds"] > 0.0
        assert set(profile["kernels"]) == {
            record.kernel for record in context.launches
        }


class TestFeedbackTraces:
    def test_feedback_loop_emits_completed_traces(self, rng):
        data = rng.normal(size=(2_000, 3))
        table = Table(3, initial_rows=data)
        sample = table.analyze(64, rng)
        registry = MetricsRegistry()
        model = SelfTuningKDE(
            sample,
            row_source=table,
            population_size=len(table),
            seed=7,
            metrics=registry,
        )
        loop = FeedbackLoop(table, model, metrics=registry).attach()
        boxes = []
        for _ in range(4):
            center = data[rng.integers(len(data))]
            boxes.append(Box(center - 0.5, center + 0.5))
        observations = loop.run_workload(boxes)
        loop.detach()

        completed = [t for t in registry.traces if t.stage == "feedback"]
        assert len(completed) == len(boxes)
        for trace, observation in zip(completed, observations):
            assert trace.actual == pytest.approx(observation.actual)
            assert trace.loss is not None
            assert trace.absolute_error is not None
        assert registry.counter_value("feedback.cycles") == len(boxes)
        assert "feedback_cycle" in registry.span_summary()
