"""Unit tests for the metrics registry and its instruments."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("queries")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_rejects_negative_increment(self, registry):
        with pytest.raises(ValueError, match="counters only go up"):
            registry.counter("queries").inc(-1)

    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("hits", {"backend": "cached"})
        b = registry.counter("hits", {"backend": "cached"})
        assert a is b

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("x", {"a": "1", "b": "2"})
        b = registry.counter("x", {"b": "2", "a": "1"})
        assert a is b

    def test_distinct_labels_are_distinct_instruments(self, registry):
        a = registry.counter("hits", {"backend": "cached"})
        b = registry.counter("hits", {"backend": "numpy"})
        assert a is not b

    def test_counter_value_and_sum(self, registry):
        registry.counter("hits", {"backend": "a"}).inc(2)
        registry.counter("hits", {"backend": "b"}).inc(3)
        assert registry.counter_value("hits", {"backend": "a"}) == 2.0
        assert registry.counter_value("hits", {"backend": "zzz"}) == 0.0
        assert registry.sum_counters("hits") == 5.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("entries")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_default_buckets_are_geometric(self):
        assert len(DEFAULT_BUCKETS) == 15
        ratios = [
            b2 / b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        ]
        assert all(abs(r - 4.0) < 1e-9 for r in ratios)

    def test_observations_land_in_correct_buckets(self, registry):
        histogram = registry.histogram("t", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        assert histogram.mean == pytest.approx(555.5 / 4)

    def test_boundary_value_counts_as_le(self, registry):
        histogram = registry.histogram("t", buckets=(1.0, 10.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_empty_histogram_mean_is_zero(self, registry):
        assert registry.histogram("t").mean == 0.0


class TestTimer:
    def test_timer_observes_elapsed_seconds(self, registry):
        with registry.timer("op"):
            pass
        histogram = registry.histogram("op")
        assert histogram.count == 1
        assert 0.0 <= histogram.sum < 1.0


class TestSpansAndTraces:
    def test_record_span_aggregates_by_path_and_labels(self, registry):
        registry.record_span(("a", "b"), 0.5, {"backend": "numpy"})
        registry.record_span(("a", "b"), 0.25, {"backend": "numpy"})
        registry.record_span(("a",), 1.0)
        summary = registry.span_summary()
        entry = summary["a/b{backend=numpy}"]
        assert entry["count"] == 2
        assert entry["seconds"] == pytest.approx(0.75)
        assert summary["a"]["count"] == 1

    def test_query_ids_are_monotone(self, registry):
        assert [registry.next_query_id() for _ in range(3)] == [1, 2, 3]


class TestSnapshot:
    def test_snapshot_shape(self, registry):
        registry.counter("c", {"k": "v"}).inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.5)
        registry.record_span(("top",), 0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c{k=v}": 1.0}
        assert snapshot["gauges"] == {"g": 2.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["spans"]["top"]["count"] == 1
        assert snapshot["traces"] == []


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert not null.enabled
        # All accessors return the same shared no-op singleton.
        assert null.counter("a") is null.gauge("b")
        assert null.histogram("c") is null.timer("d")
        null.counter("a").inc(5)
        null.histogram("c").observe(1.0)
        null.record_span(("x",), 1.0)
        assert null.counter_value("a") == 0.0
        assert list(null.iter_counters()) == []
        assert null.span_summary() == {}
        assert len(null.traces) == 0


class TestProcessRegistry:
    def test_enable_disable_roundtrip(self):
        assert not metrics_enabled()
        try:
            live = enable_metrics()
            assert metrics_enabled()
            assert get_registry() is live
        finally:
            disable_metrics()
        assert not metrics_enabled()
        assert isinstance(get_registry(), NullRegistry)

    def test_enable_with_explicit_registry(self):
        mine = MetricsRegistry()
        try:
            assert enable_metrics(mine) is mine
            assert get_registry() is mine
        finally:
            disable_metrics()

    def test_set_registry_rejects_non_registry(self):
        with pytest.raises(TypeError, match="MetricsRegistry"):
            set_registry(object())
