"""Span nesting, context propagation, and the disabled fast path."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.spans import (
    SpanContext,
    current_span_context,
    span,
)


def test_nested_spans_record_slash_joined_paths():
    registry = MetricsRegistry()
    with span("outer", registry):
        with span("inner", registry):
            pass
        with span("inner", registry):
            pass
    summary = registry.span_summary()
    assert summary["outer"]["count"] == 1
    assert summary["outer/inner"]["count"] == 2


def test_span_labels_separate_aggregates():
    registry = MetricsRegistry()
    with span("estimate", registry, backend="numpy"):
        pass
    with span("estimate", registry, backend="cached"):
        pass
    summary = registry.span_summary()
    assert summary["estimate{backend=cached}"]["count"] == 1
    assert summary["estimate{backend=numpy}"]["count"] == 1


def test_disabled_registry_returns_shared_null_span():
    null = NullRegistry()
    a = span("anything", null)
    b = span("else", null)
    assert a is b  # the shared singleton: no allocation on the hot path
    with a:
        pass  # and it is inert
    assert null.span_summary() == {}


def test_current_span_context_snapshots_active_path():
    registry = MetricsRegistry()
    assert current_span_context() == SpanContext(path=())
    with span("outer", registry):
        with span("inner", registry):
            context = current_span_context()
    assert context.path == ("outer", "inner")
    # Back outside every span the ambient path is empty again.
    assert current_span_context().path == ()


def test_span_context_child_paths():
    context = SpanContext(path=("estimate_batch",))
    assert context.child("shard[0]") == ("estimate_batch", "shard[0]")
    assert SpanContext().child("x") == ("x",)


def test_worker_style_record_reattaches_under_host_path():
    """The sharded-backend protocol: ship the context, fold by value."""
    registry = MetricsRegistry()
    with span("estimate_batch", registry):
        context = current_span_context()
    # "Worker side": no registry, just the picklable context.
    path = context.child("shard[3]")
    # "Host side": fold the returned (path, seconds) record.
    registry.record_span(path, 0.125, {"backend": "sharded"})
    summary = registry.span_summary()
    entry = summary["estimate_batch/shard[3]{backend=sharded}"]
    assert entry["count"] == 1
    assert entry["seconds"] == 0.125


def test_span_exception_still_recorded():
    registry = MetricsRegistry()
    try:
        with span("failing", registry):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert registry.span_summary()["failing"]["count"] == 1
    # The stack unwound: the next span is top-level again.
    with span("after", registry):
        pass
    assert "after" in registry.span_summary()
