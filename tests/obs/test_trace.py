"""Estimation-trace records and the bounded trace log."""

from __future__ import annotations

import pytest

from repro.obs.trace import EstimationTrace, TraceLog


def test_minimal_trace_as_dict_drops_optionals():
    trace = EstimationTrace(query_id=1, predicted=0.25, backend="numpy")
    record = trace.as_dict()
    assert record == {
        "query_id": 1,
        "stage": "estimate",
        "timestamp": trace.timestamp,
        "predicted": 0.25,
        "backend": "numpy",
        "bandwidth_epoch": 0,
        "sample_epoch": 0,
        "cache_hits": 0,
        "cache_misses": 0,
    }
    assert trace.absolute_error is None
    assert trace.query_center is None
    assert trace.query_volume is None


def test_completed_trace_includes_error_and_loss():
    trace = EstimationTrace(
        query_id=2,
        predicted=0.25,
        backend="sharded",
        actual=0.3,
        loss=0.0025,
        shard_seconds=(0.01, 0.02),
        device_kernel_seconds={"estimate": 1e-4},
        stage="feedback",
    )
    record = trace.as_dict()
    assert record["stage"] == "feedback"
    assert record["actual"] == 0.3
    assert record["absolute_error"] == pytest.approx(0.05)
    assert record["loss"] == 0.0025
    assert record["shard_seconds"] == [0.01, 0.02]
    assert record["device_kernel_seconds"] == {"estimate": 1e-4}


def test_trace_log_is_bounded_but_counts_everything():
    log = TraceLog(capacity=3)
    for i in range(5):
        log.append(EstimationTrace(query_id=i, predicted=0.0, backend="x"))
    assert len(log) == 3
    assert log.total == 5
    assert [t.query_id for t in log] == [2, 3, 4]
    assert log.last().query_id == 4
    assert log[0].query_id == 2
    log.clear()
    assert len(log) == 0
    assert log.total == 5  # the lifetime count survives a clear


def test_trace_log_rejects_zero_capacity():
    with pytest.raises(ValueError, match="capacity"):
        TraceLog(capacity=0)
