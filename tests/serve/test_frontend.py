"""Asyncio micro-batching front end: coalescing, shedding, degradation."""

import asyncio

import numpy as np
import pytest

from repro.core.model import SelfTuningKDE
from repro.geometry import Box
from repro.obs import MetricsRegistry
from repro.serve import (
    EstimatorFrontend,
    FrontendConfig,
    ModelKey,
    ModelRegistry,
    Overloaded,
)

TABLE = "orders"
COLUMNS = ("price", "qty", "disc")


def make_sample(rows=400, dims=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dims))


def make_boxes(dims=3, count=12, seed=9):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(count, dims))
    widths = rng.uniform(0.3, 1.6, size=(count, dims))
    return [
        Box(low=c - w / 2, high=c + w / 2) for c, w in zip(centers, widths)
    ]


def make_registry(seed=1):
    registry = ModelRegistry()
    model = SelfTuningKDE(make_sample(seed=seed), seed=seed)
    server = registry.register(TABLE, COLUMNS, model)
    return registry, server, model


# ---------------------------------------------------------------------------
# (a) Consistency: front-end answers == direct snapshot reads
# ---------------------------------------------------------------------------
class TestConsistency:
    def test_concurrent_clients_match_direct_estimates(self):
        registry, server, _ = make_registry()
        boxes = make_boxes()
        direct = {i: server.estimate(box) for i, box in enumerate(boxes)}

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                async def client(slot):
                    values = []
                    for i in range(len(boxes)):
                        index = (slot + i) % len(boxes)
                        value = await frontend.estimate(
                            TABLE, COLUMNS, boxes[index]
                        )
                        values.append((index, value))
                    return values
                return await asyncio.gather(*[client(s) for s in range(6)])

        for per_client in asyncio.run(main()):
            for index, value in per_client:
                assert value == direct[index]

    def test_unknown_model_raises_keyerror(self):
        registry, _, _ = make_registry()

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                with pytest.raises(KeyError):
                    await frontend.estimate("nope", ("a",), make_boxes()[0])

        asyncio.run(main())

    def test_dimension_mismatch_rejected_at_admission(self):
        registry, _, _ = make_registry()

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                bad = Box(low=np.zeros(2), high=np.ones(2))
                with pytest.raises(ValueError):
                    await frontend.estimate(TABLE, COLUMNS, bad)
                with pytest.raises(TypeError):
                    await frontend.estimate(TABLE, COLUMNS, "not a box")

        asyncio.run(main())

    def test_nonfinite_bounds_rejected_at_admission(self):
        # Box tolerates inf/NaN bounds but QueryBatch does not; without
        # admission-time rejection one poisoned request killed the lane's
        # dispatcher and stranded every coalesced client forever.
        registry, server, _ = make_registry()
        good = make_boxes()[0]

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                inf_box = Box(low=np.zeros(3), high=np.full(3, np.inf))
                nan_box = Box(low=np.full(3, np.nan), high=np.full(3, np.nan))
                with pytest.raises(ValueError, match="finite"):
                    await frontend.estimate(TABLE, COLUMNS, inf_box)
                with pytest.raises(ValueError, match="finite"):
                    await frontend.estimate(TABLE, COLUMNS, nan_box)
                # The lane is alive and well for valid requests.
                return await frontend.estimate(TABLE, COLUMNS, good)

        assert asyncio.run(main()) == server.estimate(good)

    def test_invalid_request_does_not_spawn_lane(self):
        registry, _, _ = make_registry()

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                with pytest.raises(TypeError):
                    await frontend.estimate(TABLE, COLUMNS, "not a box")
                bad = Box(low=np.zeros(2), high=np.ones(2))
                with pytest.raises(ValueError):
                    await frontend.estimate(TABLE, COLUMNS, bad)
                assert frontend._lanes == {}

        asyncio.run(main())

    def test_poisoned_batch_fails_futures_not_lane(self):
        # Defense in depth behind admission validation: if batch
        # construction or evaluation raises, the batch's own futures get
        # the error and the dispatcher keeps serving later requests.
        registry, server, _ = make_registry()
        good = make_boxes()[0]

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                await frontend.estimate(TABLE, COLUMNS, good)
                lane = frontend._lanes[ModelKey.for_table(TABLE, COLUMNS)]
                poisoned = Box(low=np.zeros(3), high=np.full(3, np.inf))
                future = asyncio.get_running_loop().create_future()
                lane.queue.append((poisoned, future))
                lane.wakeup.set()
                with pytest.raises(ValueError):
                    await future
                # The dispatcher survived; the lane still answers.
                return await frontend.estimate(TABLE, COLUMNS, good)

        assert asyncio.run(main()) == server.estimate(good)

    def test_estimate_requires_start(self):
        registry, _, _ = make_registry()
        frontend = EstimatorFrontend(registry)

        async def main():
            with pytest.raises(RuntimeError):
                await frontend.estimate(TABLE, COLUMNS, make_boxes()[0])

        asyncio.run(main())


# ---------------------------------------------------------------------------
# (b) Coalescing under concurrent load
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_load_coalesces_into_shared_batches(self):
        registry, _, _ = make_registry()
        boxes = make_boxes()
        clients, rounds = 8, 6

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                async def client(slot):
                    for i in range(rounds):
                        await frontend.estimate(
                            TABLE, COLUMNS, boxes[(slot + i) % len(boxes)]
                        )
                await asyncio.gather(*[client(s) for s in range(clients)])
                return frontend.stats()

        stats = asyncio.run(main())
        assert stats.answered == clients * rounds
        assert stats.coalescing_factor > 1.0
        assert stats.batches < stats.answered

    def test_batch_size_cap_respected(self):
        registry, _, _ = make_registry()
        box = make_boxes()[0]
        config = FrontendConfig(max_batch_size=3, max_queue_depth=64)
        metrics = MetricsRegistry()

        async def main():
            frontend = EstimatorFrontend(
                registry, config=config, metrics=metrics
            )
            async with frontend:
                await asyncio.gather(
                    *[frontend.estimate(TABLE, COLUMNS, box) for _ in range(9)]
                )
                return frontend.stats()

        stats = asyncio.run(main())
        assert stats.answered == 9
        assert stats.batches >= 3  # 9 requests can't fit fewer 3-caps
        histogram = metrics.histogram(
            "frontend.coalescing", {"model": f"{TABLE}/{','.join(COLUMNS)}"}
        )
        assert histogram.count == stats.batches


# ---------------------------------------------------------------------------
# (c) Backpressure and load shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def test_overflow_sheds_fast_while_admitted_complete(self):
        registry, server, _ = make_registry()
        box = make_boxes()[0]
        depth = 4
        config = FrontendConfig(max_queue_depth=depth)
        metrics = MetricsRegistry()

        async def main():
            frontend = EstimatorFrontend(
                registry, config=config, metrics=metrics
            )
            async with frontend:
                # All 12 submissions enqueue before the dispatcher first
                # runs, so exactly `depth` are admitted and the rest shed.
                outcomes = await asyncio.gather(
                    *[
                        frontend.estimate(TABLE, COLUMNS, box)
                        for _ in range(12)
                    ],
                    return_exceptions=True,
                )
                return outcomes, frontend.stats()

        outcomes, stats = asyncio.run(main())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        served = [o for o in outcomes if isinstance(o, float)]
        assert len(shed) == 12 - depth
        assert len(served) == depth
        assert all(value == server.estimate(box) for value in served)
        assert stats.shed == len(shed)
        assert metrics.counter_value(
            "frontend.shed", {"model": f"{TABLE}/{','.join(COLUMNS)}"}
        ) == len(shed)

    def test_stop_fails_queued_requests_with_overloaded(self):
        registry, _, _ = make_registry()
        box = make_boxes()[0]

        async def main():
            frontend = EstimatorFrontend(registry)
            await frontend.start()
            pending = [
                asyncio.ensure_future(
                    frontend.estimate(TABLE, COLUMNS, box)
                )
                for _ in range(3)
            ]
            # One yield lets the clients enqueue; the dispatcher task is
            # scheduled behind this coroutine, so nothing drains yet.
            await asyncio.sleep(0)
            lane = frontend._lanes[ModelKey.for_table(TABLE, COLUMNS)]
            assert len(lane.queue) == 3
            await frontend.stop()
            return await asyncio.gather(*pending, return_exceptions=True)

        outcomes = asyncio.run(main())
        assert all(isinstance(o, Overloaded) for o in outcomes)


# ---------------------------------------------------------------------------
# (d) Watchdog: degraded stale-snapshot serving via the breaker
# ---------------------------------------------------------------------------
class TestWatchdogDegradation:
    def test_tripped_lane_serves_pinned_stale_snapshot(self):
        registry, server, model = make_registry()
        boxes = make_boxes()
        query = boxes[0]
        # A recovery window far longer than the test keeps the lane open.
        config = FrontendConfig(breaker_recovery=300.0)

        async def main():
            async with EstimatorFrontend(registry, config=config) as frontend:
                baseline = await frontend.estimate(TABLE, COLUMNS, query)
                frontend.trip(TABLE, COLUMNS)
                assert frontend.degraded(TABLE, COLUMNS)
                # The writer moves on and publishes a new snapshot...
                for _ in range(60):
                    model.feedback(query, 0.9)
                server.publish()
                live = server.estimate(query)
                # ...but the tripped lane answers from the pinned one.
                stale = await frontend.estimate(TABLE, COLUMNS, query)
                stats = frontend.stats(TABLE, COLUMNS)
                return baseline, live, stale, stats

        baseline, live, stale, stats = asyncio.run(main())
        assert stale == baseline
        assert live != baseline
        assert stats.stale_batches >= 1

    def test_watchdog_trips_on_writer_errors(self):
        registry, server, model = make_registry()
        query = make_boxes()[0]
        config = FrontendConfig(breaker_recovery=300.0)
        metrics = MetricsRegistry()

        async def main():
            frontend = EstimatorFrontend(
                registry, config=config, metrics=metrics
            )
            async with frontend:
                await frontend.estimate(TABLE, COLUMNS, query)
                assert frontend.check_health() == []
                # Break the writer; the server records the error and
                # keeps serving (PR 5 degradation), the watchdog trips.
                model.feedback = _exploding_feedback
                with pytest.raises(RuntimeError):
                    server.feedback(query, 0.5)
                trips = frontend.check_health()
                assert trips == [
                    (f"{TABLE}/{','.join(COLUMNS)}", "writer_errors")
                ]
                assert frontend.degraded(TABLE, COLUMNS)
                # Degraded serving still answers instead of erroring.
                value = await frontend.estimate(TABLE, COLUMNS, query)
                assert isinstance(value, float)
                return frontend.stats(TABLE, COLUMNS)

        stats = asyncio.run(main())
        assert stats.watchdog_trips == 1
        assert stats.stale_batches >= 1
        assert (
            metrics.counter_value(
                "frontend.watchdog_trips",
                {
                    "model": f"{TABLE}/{','.join(COLUMNS)}",
                    "reason": "writer_errors",
                },
            )
            == 1
        )

    def test_watchdog_trips_on_latency_spike(self):
        registry, _, _ = make_registry()
        query = make_boxes()[0]
        # Any real batch exceeds a 1ns threshold.
        config = FrontendConfig(
            latency_threshold=1e-9, breaker_recovery=300.0
        )

        async def main():
            async with EstimatorFrontend(registry, config=config) as frontend:
                await frontend.estimate(TABLE, COLUMNS, query)
                trips = frontend.check_health()
                assert [reason for _, reason in trips] == ["latency"]
                assert frontend.degraded(TABLE, COLUMNS)
                # An already-open lane is not re-tripped by the next sweep.
                assert frontend.check_health() == []

        asyncio.run(main())

    def test_trip_during_inflight_batch_sticks(self):
        # A trip landing while a batch is in the executor must not be
        # undone by that batch's success: the success predates the trip.
        import threading

        registry, _, _ = make_registry()
        query = make_boxes()[0]
        config = FrontendConfig(breaker_recovery=300.0)

        async def main():
            async with EstimatorFrontend(registry, config=config) as frontend:
                await frontend.estimate(TABLE, COLUMNS, query)
                lane = frontend._lanes[ModelKey.for_table(TABLE, COLUMNS)]
                reader = lane.server.published.reader
                real = reader.selectivity_batch
                entered, release = threading.Event(), threading.Event()

                def slow_batch(batch):
                    entered.set()
                    release.wait(5.0)
                    return real(batch)

                reader.selectivity_batch = slow_batch
                task = asyncio.ensure_future(
                    frontend.estimate(TABLE, COLUMNS, query)
                )
                while not entered.is_set():
                    await asyncio.sleep(0.001)
                # Batch is mid-flight in the executor; the watchdog
                # (here: a manual trip) opens the breaker.
                frontend.trip(TABLE, COLUMNS)
                assert frontend.degraded(TABLE, COLUMNS)
                release.set()
                value = await task
                assert isinstance(value, float)
                # The completed batch did not silently close the breaker.
                assert frontend.degraded(TABLE, COLUMNS)

        asyncio.run(main())

    def test_pre_traffic_models_are_queryable(self):
        registry, _, _ = make_registry()

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                # Registered but never queried: introspection works and
                # reports healthy, all-zero state — matching trip().
                assert not frontend.degraded(TABLE, COLUMNS)
                stats = frontend.stats(TABLE, COLUMNS)
                assert stats.requests == 0 and stats.batches == 0
                # Unregistered models still raise KeyError.
                with pytest.raises(KeyError):
                    frontend.degraded("nope", ("a",))
                with pytest.raises(KeyError):
                    frontend.stats("nope", ("a",))

        asyncio.run(main())

    def test_breaker_probe_restores_live_serving(self):
        registry, _, _ = make_registry()
        query = make_boxes()[0]
        # Zero recovery: the batch after a trip is a half-open probe.
        config = FrontendConfig(breaker_recovery=0.0)

        async def main():
            async with EstimatorFrontend(registry, config=config) as frontend:
                await frontend.estimate(TABLE, COLUMNS, query)
                frontend.trip(TABLE, COLUMNS)
                assert frontend.degraded(TABLE, COLUMNS)
                await frontend.estimate(TABLE, COLUMNS, query)
                assert not frontend.degraded(TABLE, COLUMNS)
                return frontend.stats(TABLE, COLUMNS)

        stats = asyncio.run(main())
        assert stats.stale_batches == 0  # the probe served live


def _exploding_feedback(query, true_selectivity):
    raise RuntimeError("writer down")


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------
class TestSessions:
    def test_session_counts_and_closes(self):
        registry, _, _ = make_registry()
        query = make_boxes()[0]
        metrics = MetricsRegistry()

        async def main():
            frontend = EstimatorFrontend(registry, metrics=metrics)
            async with frontend:
                async with frontend.session() as session:
                    await session.estimate(TABLE, COLUMNS, query)
                    await session.estimate(TABLE, COLUMNS, query)
                    assert session.requests == 2
                    assert metrics.gauge("frontend.sessions").value == 1
                assert metrics.gauge("frontend.sessions").value == 0
                with pytest.raises(RuntimeError):
                    await session.estimate(TABLE, COLUMNS, query)

        asyncio.run(main())

    def test_session_ids_are_distinct(self):
        registry, _, _ = make_registry()

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                first, second = frontend.session(), frontend.session()
                assert first.session_id != second.session_id
                first.close()
                second.close()

        asyncio.run(main())


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_batch_size=0),
            dict(max_queue_depth=0),
            dict(watchdog_interval=0.0),
            dict(latency_threshold=0.0),
            dict(latency_window=0),
            dict(writer_error_threshold=0),
            dict(breaker_recovery=-1.0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FrontendConfig(**kwargs)

    def test_defaults_valid(self):
        config = FrontendConfig()
        assert config.max_batch_size >= 1
        assert config.max_queue_depth >= 1


# ---------------------------------------------------------------------------
# Reader backend threading (ISSUE 7): config -> lane -> snapshot server
# ---------------------------------------------------------------------------
class TestReaderBackendConfig:
    def test_unknown_backend_name_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            FrontendConfig(reader_backend="no-such-backend")
        with pytest.raises(TypeError):
            FrontendConfig(reader_backend=object())

    def test_config_backend_applied_to_lane_servers(self):
        from repro.core.backends import GridBackend

        registry, server, _ = make_registry()
        boxes = make_boxes()
        direct = [server.estimate(box) for box in boxes]
        config = FrontendConfig(reader_backend="grid")

        async def main():
            async with EstimatorFrontend(
                registry, config=config
            ) as frontend:
                return [
                    await frontend.estimate(TABLE, COLUMNS, box)
                    for box in boxes
                ]

        served = asyncio.run(main())
        # Spinning up the lane switched the server's reader engine...
        assert server.reader_backend == "grid"
        assert isinstance(server.published.reader.backend, GridBackend)
        # ...and the grid answers approximate the exact reader.
        assert np.allclose(served, direct, rtol=0, atol=0.05)

    def test_server_pinned_backend_wins_over_config(self):
        from repro.core.backends import HashingBackend

        registry = ModelRegistry()
        model = SelfTuningKDE(make_sample(seed=1), seed=1)
        server = registry.register(
            TABLE, COLUMNS, model, backend="hashing"
        )
        config = FrontendConfig(reader_backend="grid")

        async def main():
            async with EstimatorFrontend(
                registry, config=config
            ) as frontend:
                await frontend.estimate(TABLE, COLUMNS, make_boxes()[0])

        asyncio.run(main())
        assert server.reader_backend == "hashing"
        assert isinstance(server.published.reader.backend, HashingBackend)


# ---------------------------------------------------------------------------
# ModelKey lanes and plan-level estimation
# ---------------------------------------------------------------------------
class TestKeyedLanes:
    def test_key_and_legacy_spellings_share_a_lane(self):
        registry, server, _ = make_registry()
        key = ModelKey.for_table(TABLE, COLUMNS)
        box = make_boxes()[0]

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                legacy = await frontend.estimate(TABLE, COLUMNS, box)
                keyed = await frontend.estimate(key, box)
                return legacy, keyed, len(frontend._lanes)

        legacy, keyed, lanes = asyncio.run(main())
        assert legacy == keyed == server.estimate(box)
        assert lanes == 1

    def test_stats_accept_model_keys(self):
        registry, _, _ = make_registry()
        key = ModelKey.for_table(TABLE, COLUMNS)

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                await frontend.estimate(key, make_boxes()[0])
                return (
                    frontend.stats(key).requests,
                    frontend.stats(TABLE, COLUMNS).requests,
                    frontend.degraded(key),
                    frontend.recent_queries(key),
                )

        keyed, legacy, degraded, recent = asyncio.run(main())
        assert keyed == legacy == 1
        assert degraded is False
        assert len(recent) == 1


class TestPlanCardinalities:
    def _plan_fixture(self, seed=11):
        from repro.db import Table
        from repro.db.optimizer import JoinQuery

        rng = np.random.default_rng(seed)
        fact = Table(
            2,
            ["k", "v"],
            initial_rows=np.column_stack(
                [
                    rng.integers(0, 50, 1_000).astype(float),
                    rng.normal(size=1_000),
                ]
            ),
        )
        dim = Table(
            2,
            ["k", "w"],
            initial_rows=np.column_stack(
                [np.arange(50.0), rng.normal(size=50)]
            ),
        )
        query = JoinQuery(
            tables={"fact": fact, "dim": dim},
            predicates={
                "fact": Box([-1.0, -1.0], [51.0, 1.0]),
                "dim": Box([-1.0, -0.5], [51.0, 0.5]),
            },
            joins=[("fact", 0, "dim", 0)],
        )
        registry = ModelRegistry()
        for name, table in query.tables.items():
            rows = table.rows()
            sample = rows[rng.choice(len(rows), min(200, len(rows)), replace=False)]
            registry.register(
                name, tuple(table.column_names), SelfTuningKDE(sample, seed=3)
            )
        return registry, query

    def test_plan_estimate_batches_and_prices_all_nodes(self):
        registry, query = self._plan_fixture()

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                return await frontend.plan_cardinalities(query)

        estimate = asyncio.run(main())
        assert estimate.order in (("dim", "fact"), ("fact", "dim"))
        assert len(estimate.cardinalities) == 2
        assert set(estimate.base_selectivities) == {"fact", "dim"}
        for value in estimate.base_selectivities.values():
            assert 0.0 <= value <= 1.0
        rungs = {record.rung for record in estimate.pricing}
        # Predicates answered through the admission batch; the edge
        # priced from the served snapshots' joint integral.
        assert "frontend-batch" in rungs
        assert "joint-integral" in rungs

    def test_plan_answers_match_single_query_path(self):
        registry, query = self._plan_fixture()
        from repro.db.optimizer import RegistryCostModel

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                estimate = await frontend.plan_cardinalities(query)
                singles = {}
                for name in query.predicates:
                    key, box = RegistryCostModel.resolve_table_model(
                        registry, query, name
                    )
                    singles[name] = await frontend.estimate(key, box)
                return estimate, singles

        estimate, singles = asyncio.run(main())
        for name, value in singles.items():
            assert estimate.base_selectivities[name] == value

    def test_unregistered_predicate_table_raises(self):
        registry, query = self._plan_fixture()
        registry.unregister("dim", ("k", "w"))

        async def main():
            async with EstimatorFrontend(registry) as frontend:
                with pytest.raises(KeyError):
                    await frontend.plan_cardinalities(query)

        asyncio.run(main())
