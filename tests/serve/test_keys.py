"""Join-signature model identity: ModelKey/JoinEdge and their plumbing.

Covers canonicalisation and ordering of the keys themselves, the legacy
``(table, columns)`` coercion choke point, and the round-trips through
the layers re-keyed on ModelKey: registry, snapshot-server naming,
checkpoint directory namespacing, and front-end lanes.
"""

import os

import numpy as np
import pytest

from repro.core.model import SelfTuningKDE
from repro.geometry import Box
from repro.serve import (
    CheckpointManager,
    JoinEdge,
    ModelKey,
    ModelRegistry,
    SnapshotServer,
)
from repro.serve.keys import JOIN_SAMPLE, TABLE, THETA_JOIN


def make_model(dims=2, seed=0):
    rng = np.random.default_rng(seed)
    return SelfTuningKDE(rng.normal(size=(64, dims)), seed=seed)


class TestJoinEdge:
    def test_of_canonicalises_orientation(self):
        a = JoinEdge.of("fact", "k", "dim", "k")
        b = JoinEdge.of("dim", "k", "fact", "k")
        assert a == b
        assert a.left_table == "dim"  # lexicographically smaller endpoint
        assert str(a) == "dim.k=fact.k"

    def test_integer_columns_stringified(self):
        edge = JoinEdge.of("a", 0, "b", 1)
        assert edge.left_column == "0"
        assert edge.right_column == "1"

    def test_non_canonical_direct_construction_rejected(self):
        with pytest.raises(ValueError, match="canonicalised"):
            JoinEdge("z", "k", "a", "k")

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            JoinEdge.of("", "k", "b", "k")


class TestModelKey:
    def test_for_table_round_trip(self):
        key = ModelKey.for_table("orders", ("price", "qty"))
        assert key.kind == TABLE
        assert key.table == "orders"
        assert key.columns == ("price", "qty")
        assert key.label == "orders/price,qty"

    def test_table_label_matches_legacy_metric_spelling(self):
        key = ModelKey.for_table("t", ("a", "b", "c"))
        assert key.label == "t/a,b,c"

    def test_coerce_spellings_agree(self):
        direct = ModelKey.for_table("t", ("a", "b"))
        assert ModelKey.coerce(direct) is direct
        assert ModelKey.coerce("t", ("a", "b")) == direct
        assert ModelKey.coerce(("t", ("a", "b"))) == direct

    def test_coerce_rejects_key_plus_columns(self):
        key = ModelKey.for_table("t", ("a",))
        with pytest.raises(TypeError):
            ModelKey.coerce(key, ("a",))

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            ModelKey.coerce(42)

    def test_join_sample_edge_order_is_canonical(self):
        cols = ("dim.k", "fact.k")
        a = ModelKey.for_join_sample([("fact", "k", "dim", "k")], cols)
        b = ModelKey.for_join_sample([("dim", "k", "fact", "k")], cols)
        assert a == b
        assert a.kind == JOIN_SAMPLE
        assert a.tables == ("dim", "fact")
        assert a.covers_edge(("dim", "k", "fact", "k"))
        assert a.covers_edge(JoinEdge.of("fact", "k", "dim", "k"))
        assert not a.covers_edge(("dim", "k", "fact", "other"))

    def test_theta_join_key(self):
        key = ModelKey.for_theta_join("s", "b", "r", "a")
        assert key.kind == THETA_JOIN
        assert key.tables == ("r", "s")
        assert key.columns == ("r.a", "s.b")
        assert "theta-join" in key.label

    def test_join_kinds_have_no_single_table(self):
        key = ModelKey.for_theta_join("r", "a", "s", "b")
        with pytest.raises(ValueError):
            key.table

    def test_keys_are_hashable_and_ordered(self):
        keys = {
            ModelKey.for_table("t", ("a",)),
            ModelKey.for_table("t", ("a",)),
            ModelKey.for_table("t", ("b",)),
        }
        assert len(keys) == 2
        assert sorted(keys)  # total order exists

    def test_slug_is_filesystem_safe_and_distinct(self):
        # Sanitisation alone would collide these two; the digest must not.
        a = ModelKey.for_table("t", ("a", "b"))
        b = ModelKey.for_table("t", ("a.b",))
        assert a.slug != b.slug
        for key in (a, b):
            assert "/" not in key.slug
            assert "," not in key.slug

    def test_raw_constructor_validates(self):
        with pytest.raises(ValueError):
            ModelKey(kind="nope", tables=("t",), columns=("a",))
        with pytest.raises(ValueError):
            ModelKey(kind=TABLE, tables=("b", "a"), columns=("x",))
        with pytest.raises(ValueError):
            ModelKey(kind=TABLE, tables=("t",), columns=())
        edge = JoinEdge.of("a", "k", "b", "k")
        with pytest.raises(ValueError, match="outside"):
            ModelKey(
                kind=JOIN_SAMPLE,
                tables=("a", "c"),
                columns=("a.k",),
                edges=(edge,),
            )


class TestRegistryKeying:
    def test_legacy_and_key_spellings_hit_same_entry(self):
        registry = ModelRegistry()
        registry.register("orders", ("price", "qty"), make_model())
        key = ModelKey.for_table("orders", ("price", "qty"))
        assert registry.get("orders", ("price", "qty")) is registry.get(key)
        assert key in registry
        assert ("orders", ("price", "qty")) in registry
        assert registry.keys() == [key]

    def test_join_sample_key_round_trip(self):
        registry = ModelRegistry()
        key = ModelKey.for_join_sample(
            [("fact", "k", "dim", "k")], ("fact.k", "dim.k")
        )
        server = registry.register(key, make_model())
        assert registry.get(key) is server
        # Whichever way round the caller spells the edge, same entry.
        flipped = ModelKey.for_join_sample(
            [("dim", "k", "fact", "k")], ("fact.k", "dim.k")
        )
        assert registry.get(flipped) is server
        registry.unregister(flipped)
        assert key not in registry

    def test_register_assigns_server_key(self):
        registry = ModelRegistry()
        server = registry.register("t", ("a", "b"), make_model())
        assert server.key == ModelKey.for_table("t", ("a", "b"))


class TestServerKey:
    def test_key_is_set_once(self):
        server = SnapshotServer(make_model())
        assert server.key is None
        key = ModelKey.for_table("t", ("a", "b"))
        server.key = key
        server.key = key  # idempotent re-assignment is fine
        with pytest.raises(ValueError):
            server.key = ModelKey.for_table("t", ("c",))

    def test_key_accepted_at_construction(self):
        server = SnapshotServer(
            make_model(), key=ModelKey.for_table("t", ("a", "b"))
        )
        assert server.key.label == "t/a,b"


class TestCheckpointKeyNamespacing:
    def test_directories_namespaced_by_slug(self, tmp_path):
        base = str(tmp_path)
        key_a = ModelKey.for_table("t", ("a",))
        key_b = ModelKey.for_table("t", ("b",))
        manager_a = CheckpointManager(
            SnapshotServer(make_model(dims=1, seed=1)), base, key=key_a
        )
        manager_b = CheckpointManager(
            SnapshotServer(make_model(dims=1, seed=2)), base, key=key_b
        )
        assert manager_a.directory != manager_b.directory
        assert manager_a.directory == os.path.join(base, key_a.slug)
        manager_a.checkpoint()
        manager_b.checkpoint()
        assert manager_a.latest() != manager_b.latest()

    def test_key_inherited_from_keyed_target(self, tmp_path):
        key = ModelKey.for_table("orders", ("price",))
        server = SnapshotServer(make_model(dims=1), key=key)
        manager = CheckpointManager(server, str(tmp_path))
        assert manager.key == key
        assert manager.directory == os.path.join(str(tmp_path), key.slug)

    def test_unkeyed_target_keeps_flat_directory(self, tmp_path):
        manager = CheckpointManager(
            SnapshotServer(make_model(dims=1)), str(tmp_path)
        )
        assert manager.key is None
        assert manager.directory == str(tmp_path)

    def test_warm_start_round_trip_through_keyed_directory(self, tmp_path):
        key = ModelKey.for_table("t", ("a", "b"))
        server = SnapshotServer(make_model(seed=3), key=key)
        manager = CheckpointManager(server, str(tmp_path))
        manager.checkpoint()
        query = Box(low=np.array([-1.0, -1.0]), high=np.array([0.5, 0.5]))
        expected = server.estimate(query)

        fresh = SnapshotServer(make_model(seed=99), key=key)
        restored = CheckpointManager(fresh, str(tmp_path))
        assert restored.warm_start()
        assert fresh.estimate(query) == pytest.approx(expected)
