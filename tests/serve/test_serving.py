"""Serving layer: RCU publication, registry, checkpoints, concurrency."""

import os
import threading

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.model import SelfTuningKDE
from repro.core.state import ModelState
from repro.serve import (
    CheckpointManager,
    ModelRegistry,
    PublishedSnapshot,
    SnapshotServer,
)
from repro.geometry import Box


def make_sample(rows=200, dims=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dims))


def make_query(dims=2):
    return Box(low=np.full(dims, -1.0), high=np.full(dims, 0.8))


def make_queries(dims=2, count=6, seed=9):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(count, dims))
    widths = rng.uniform(0.3, 1.5, size=(count, dims))
    return [
        Box(low=c - w / 2, high=c + w / 2) for c, w in zip(centers, widths)
    ]


# ---------------------------------------------------------------------------
# SnapshotServer publication semantics
# ---------------------------------------------------------------------------
class TestSnapshotServer:
    def test_initial_publication(self):
        server = SnapshotServer(SelfTuningKDE(make_sample(), seed=1))
        assert server.publish_count == 1
        assert server.staleness == 0
        assert server.published_state.kind == "self_tuning"

    def test_estimate_serves_published_snapshot_not_writer(self):
        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model)
        query = make_query()
        before = server.estimate(query)
        # Mutate the writer outside the server's knowledge; readers keep
        # serving the published snapshot until the next publication.
        for _ in range(50):
            model.feedback(query, 0.5)
        assert server.estimate(query) == before
        server.publish()
        assert server.estimate(query) != before

    def test_publishes_once_per_completed_epoch(self):
        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model)
        query = make_query()
        published_epochs = []
        server._on_publish = lambda pub: published_epochs.append(pub.epochs)
        batch_size = model.config.adaptive.batch_size
        for _ in range(batch_size * 3):
            server.feedback(query, 0.4)
        # One publication per completed mini-batch step, and staleness
        # counts only the feedbacks of the unfinished batch.
        assert server.publish_count == 1 + len(published_epochs)
        assert len(published_epochs) == 3
        assert server.staleness < batch_size
        assert len(set(published_epochs)) == len(published_epochs)

    def test_on_publish_callback_receives_records(self):
        records = []
        server = SnapshotServer(
            SelfTuningKDE(make_sample(), seed=1), on_publish=records.append
        )
        publication = server.publish()
        assert isinstance(publication, PublishedSnapshot)
        assert records and records[-1] is publication

    def test_restore_republishes(self):
        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model)
        query = make_query()
        baseline = server.snapshot()
        before = server.estimate(query)
        for _ in range(40):
            server.feedback(query, 0.9)
        assert server.estimate(query) != before
        server.restore(baseline)
        assert server.estimate(query) == before

    def test_works_for_static_kde(self):
        sample = make_sample()
        kde = KernelDensityEstimator(sample, scott_bandwidth(sample))
        server = SnapshotServer(kde)
        query = make_query()
        assert server.estimate(query) == kde.selectivity(query)

    def test_rejects_model_without_snapshot(self):
        with pytest.raises(TypeError):
            SnapshotServer(object())

    def test_estimate_batch_consistent(self):
        server = SnapshotServer(SelfTuningKDE(make_sample(), seed=1))
        queries = make_queries()
        batched = server.estimate_batch(queries)
        assert np.array_equal(
            batched, [server.estimate(q) for q in queries]
        )


class TestConcurrentReaders:
    def test_readers_only_observe_whole_epoch_states(self):
        """The RCU invariant under a real reader/writer race.

        Every publication is logged (under the writer lock) with its
        epoch pair and bandwidth.  Concurrent readers then must never
        observe an (epochs, bandwidth) pair absent from that log — a
        torn read of a half-applied RMSprop step would surface as an
        unknown pair.
        """
        model = SelfTuningKDE(make_sample(rows=300), seed=7)
        published = {}
        log_lock = threading.Lock()

        def record(publication):
            with log_lock:
                published[publication.epochs] = (
                    publication.state.bandwidth.tobytes()
                )

        server = SnapshotServer(model, on_publish=record)
        queries = make_queries()
        truths = [0.1, 0.3, 0.5, 0.7, 0.2, 0.6]
        stop = threading.Event()
        violations = []

        def read_loop():
            while not stop.is_set():
                publication = server.published
                observed = (
                    publication.epochs,
                    publication.state.bandwidth.tobytes(),
                    publication.reader.bandwidth.tobytes(),
                )
                with log_lock:
                    expected = published.get(observed[0])
                if expected is None or observed[1] != expected:
                    violations.append(("unpublished state", observed[0]))
                    return
                if observed[2] != observed[1]:
                    violations.append(("reader/state mismatch", observed[0]))
                    return
                server.estimate(queries[0])

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for index in range(200):
                server.feedback(
                    queries[index % len(queries)],
                    truths[index % len(truths)],
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not violations
        assert server.publish_count > 2  # the race actually exercised RCU


# ---------------------------------------------------------------------------
# ModelRegistry
# ---------------------------------------------------------------------------
class TestModelRegistry:
    def test_register_wraps_and_retrieves(self):
        registry = ModelRegistry()
        model = SelfTuningKDE(make_sample(), seed=1)
        server = registry.register("orders", ("price", "quantity"), model)
        assert isinstance(server, SnapshotServer)
        assert server.model is model
        assert registry.get("orders", ["price", "quantity"]) is server
        assert ("orders", ("price", "quantity")) in registry
        assert len(registry) == 1

    def test_register_existing_server_passthrough(self):
        registry = ModelRegistry()
        server = SnapshotServer(SelfTuningKDE(make_sample(), seed=1))
        assert registry.register("t", ("a", "b"), server) is server

    def test_duplicate_key_requires_replace(self):
        registry = ModelRegistry()
        registry.register("t", ("a", "b"), SelfTuningKDE(make_sample(), seed=1))
        with pytest.raises(KeyError):
            registry.register(
                "t", ("a", "b"), SelfTuningKDE(make_sample(), seed=2)
            )
        replacement = registry.register(
            "t", ("a", "b"), SelfTuningKDE(make_sample(), seed=2), replace=True
        )
        assert registry.get("t", ("a", "b")) is replacement

    def test_missing_key(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.get("nope", ("x",))
        assert registry.lookup("nope", ("x",)) is None
        assert registry.unregister("nope", ("x",)) is None

    def test_key_validation(self):
        registry = ModelRegistry()
        model = SelfTuningKDE(make_sample(), seed=1)
        with pytest.raises(TypeError):
            registry.register("t", "not-a-sequence", model)
        with pytest.raises(ValueError):
            registry.register("", ("a",), model)
        with pytest.raises(ValueError):
            registry.register("t", (), model)


# ---------------------------------------------------------------------------
# CheckpointManager
# ---------------------------------------------------------------------------
class TestCheckpointManager:
    def _server(self, seed=1):
        return SnapshotServer(SelfTuningKDE(make_sample(), seed=seed))

    def test_checkpoint_and_retention(self, tmp_path):
        server = self._server()
        manager = CheckpointManager(server, str(tmp_path), keep_last=2)
        paths = [manager.checkpoint() for _ in range(5)]
        kept = manager.checkpoints()
        assert len(kept) == 2
        assert kept == paths[-2:]
        assert manager.latest() == paths[-1]

    def test_maybe_checkpoint_follows_feedback_cadence(self, tmp_path):
        server = self._server()
        manager = CheckpointManager(
            server, str(tmp_path), every_feedbacks=5
        )
        query = make_query()
        assert manager.maybe_checkpoint() is None  # anchors the cadence
        written = 0
        for _ in range(20):
            server.feedback(query, 0.4)
            if manager.maybe_checkpoint() is not None:
                written += 1
        assert written == 4

    def test_warm_start_restores_newest(self, tmp_path):
        server = self._server()
        query = make_query()
        manager = CheckpointManager(server, str(tmp_path))
        for _ in range(30):
            server.feedback(query, 0.7)
        manager.checkpoint()
        tuned = server.estimate(query)

        fresh = self._server(seed=99)
        restored_from = CheckpointManager(fresh, str(tmp_path)).warm_start()
        assert restored_from == manager.latest()
        assert fresh.estimate(query) == tuned

    def test_warm_start_skips_corrupt_newest(self, tmp_path):
        server = self._server()
        query = make_query()
        manager = CheckpointManager(server, str(tmp_path), keep_last=3)
        manager.checkpoint()
        for _ in range(30):
            server.feedback(query, 0.7)
        good = server.estimate(query)
        second = manager.checkpoint()
        for _ in range(30):
            server.feedback(query, 0.2)
        newest = manager.checkpoint()

        # Truncate the newest checkpoint as a crash would.
        blob = open(newest, "rb").read()
        with open(newest, "wb") as handle:
            handle.write(blob[: len(blob) // 3])

        fresh = self._server(seed=99)
        restored_from = CheckpointManager(fresh, str(tmp_path)).warm_start()
        assert restored_from == second
        assert fresh.estimate(query) == good

    def test_warm_start_empty_directory(self, tmp_path):
        assert CheckpointManager(self._server(), str(tmp_path)).warm_start() is None

    def test_indices_continue_after_restart(self, tmp_path):
        first = CheckpointManager(self._server(), str(tmp_path), keep_last=10)
        first.checkpoint()
        first.checkpoint()
        second = CheckpointManager(self._server(), str(tmp_path), keep_last=10)
        path = second.checkpoint()
        assert os.path.basename(path) == "model-00000003.ckpt"

    def test_works_with_bare_model(self, tmp_path):
        model = SelfTuningKDE(make_sample(), seed=1)
        manager = CheckpointManager(model, str(tmp_path))
        path = manager.checkpoint()
        assert ModelState.load(path).kind == "self_tuning"

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(self._server(), str(tmp_path), keep_last=0)
        with pytest.raises(ValueError):
            CheckpointManager(
                self._server(), str(tmp_path), every_feedbacks=0
            )
        with pytest.raises(TypeError):
            CheckpointManager(object(), str(tmp_path))


# ---------------------------------------------------------------------------
# Regression: on_publish exceptions must not abort publication
# ---------------------------------------------------------------------------
class TestPublishCallbackErrors:
    def test_raising_callback_does_not_abort_publication(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        calls = []

        def callback(publication):
            calls.append(publication)
            if len(calls) > 1:  # let the constructor's publication succeed
                raise RuntimeError("observer down")

        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model, metrics=metrics, on_publish=callback)
        before = server.publish_count
        publication = server.publish()  # callback raises; must still publish
        assert server.publish_count == before + 1
        assert server.published is publication
        assert server.publish_callback_errors == 1
        assert metrics.counter_value("serve.publish_callback_errors") == 1

    def test_raising_callback_keeps_feedback_path_publishing(self):
        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(
            model,
            on_publish=lambda publication: (_ for _ in ()).throw(
                RuntimeError("observer down")
            ),
        )
        query = make_query()
        batch_size = model.config.adaptive.batch_size
        before = server.estimate(query)
        for _ in range(batch_size * 2):
            server.feedback(query, 0.4)  # must not raise
        # The writer advanced AND readers followed: no permanent staleness.
        assert server.publish_count >= 3
        assert server.staleness < batch_size
        assert server.estimate(query) != before
        assert not server.degraded
        assert server.publish_callback_errors >= 2


# ---------------------------------------------------------------------------
# Regression: registry-created servers keep their serving kwargs
# ---------------------------------------------------------------------------
class TestRegistryServerKwargs:
    def test_register_forwards_kwargs_to_wrapped_server(self, tmp_path):
        from repro.obs import MetricsRegistry

        records = []
        metrics = MetricsRegistry()
        model = SelfTuningKDE(make_sample(), seed=1)
        manager = CheckpointManager(model, str(tmp_path))
        registry = ModelRegistry()
        server = registry.register(
            "orders",
            ("a", "b"),
            model,
            metrics=metrics,
            checkpoints=manager,
            on_publish=records.append,
        )
        # on_publish observed the initial publication...
        assert records and records[-1] is server.published
        # ...metrics flow into the injected registry...
        server.estimate(make_query())
        assert metrics.counter_value("serve.reads") == 1
        # ...and a writer failure cuts the emergency checkpoint the
        # registry-created server used to silently drop.
        model.feedback = _raise_feedback
        with pytest.raises(RuntimeError):
            server.feedback(make_query(), 0.5)
        assert any(tmp_path.iterdir())
        assert metrics.counter_value("serve.writer_errors") == 1

    def test_register_rejects_kwargs_for_prebuilt_server(self):
        from repro.obs import MetricsRegistry

        server = SnapshotServer(SelfTuningKDE(make_sample(), seed=1))
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="already-constructed"):
            registry.register(
                "orders", ("a", "b"), server, metrics=MetricsRegistry()
            )
        with pytest.raises(ValueError, match="checkpoints"):
            registry.register(
                "orders", ("a", "b"), server, checkpoints=object()
            )
        # No kwargs: the prebuilt server registers as-is.
        assert registry.register("orders", ("a", "b"), server) is server


def _raise_feedback(query, true_selectivity):
    raise RuntimeError("writer down")


# ---------------------------------------------------------------------------
# Staleness bookkeeping across restore()/publish()
# ---------------------------------------------------------------------------
class TestStalenessAfterRestore:
    def test_restore_resets_staleness(self):
        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model)
        baseline = server.snapshot()
        query = make_query()
        for _ in range(5):  # fewer than a mini-batch: no publication
            server.feedback(query, 0.4)
        assert server.staleness == 5
        server.restore(baseline)
        assert server.staleness == 0
        # The restored lineage publishes cleanly from here.
        assert server.published.feedback_count == server.feedback_count

    def test_publish_resets_staleness(self):
        server = SnapshotServer(SelfTuningKDE(make_sample(), seed=1))
        query = make_query()
        for _ in range(5):
            server.feedback(query, 0.4)
        assert server.staleness == 5
        server.publish()
        assert server.staleness == 0

    def test_restore_after_writer_error_recovers_bookkeeping(self):
        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model)
        query = make_query()
        for _ in range(3):
            server.feedback(query, 0.4)
        good = server.published.state
        original_feedback = model.feedback
        model.feedback = _raise_feedback
        with pytest.raises(RuntimeError):
            server.feedback(query, 0.5)
        assert server.degraded
        model.feedback = original_feedback
        server.restore(good)
        assert not server.degraded
        assert server.staleness == 0


# ---------------------------------------------------------------------------
# Reader execution backends (ISSUE 7): registry threading + republication
# ---------------------------------------------------------------------------
class TestReaderBackends:
    def test_server_builds_readers_with_named_backend(self):
        from repro.core.backends import GridBackend

        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model, reader_backend="grid")
        assert server.reader_backend == "grid"
        assert isinstance(server.published.reader.backend, GridBackend)
        # Every publication rebuilds the reader on the same backend.
        server.publish()
        assert isinstance(server.published.reader.backend, GridBackend)

    def test_factory_spec_builds_fresh_backend_per_publication(self):
        from repro.core.backends import HashingBackend

        built = []

        def factory():
            backend = HashingBackend(exact_threshold=64)
            built.append(backend)
            return backend

        server = SnapshotServer(
            SelfTuningKDE(make_sample(), seed=1), reader_backend=factory
        )
        server.publish()
        assert len(built) == 2
        assert built[0] is not built[1]
        assert server.published.reader.backend is built[-1]

    def test_unknown_backend_name_fails_fast(self):
        with pytest.raises(ValueError, match="no-such"):
            SnapshotServer(
                SelfTuningKDE(make_sample(), seed=1),
                reader_backend="no-such-backend",
            )

    def test_backend_instance_rejected(self):
        from repro.core.backends import GridBackend

        with pytest.raises(TypeError, match="instance"):
            SnapshotServer(
                SelfTuningKDE(make_sample(), seed=1),
                reader_backend=GridBackend(),
            )

    def test_set_reader_backend_republishes_published_state(self):
        from repro.core.backends import GridBackend, NumpyBackend

        model = SelfTuningKDE(make_sample(), seed=1)
        server = SnapshotServer(model)
        assert isinstance(server.published.reader.backend, NumpyBackend)
        query = make_query()
        before = server.estimate(query)
        published_epochs = server.published.epochs
        # Mutate the writer but do not publish: the backend swap must
        # rebuild the reader for the *published* state, not leak the
        # writer's in-progress epoch.
        for _ in range(3):
            model.feedback(query, 0.5)
        server.set_reader_backend("grid")
        assert isinstance(server.published.reader.backend, GridBackend)
        assert server.published.epochs == published_epochs
        # Grid answers approximate the exact reader on the same state.
        assert abs(server.estimate(query) - before) < 0.05

    def test_registry_register_threads_backend(self):
        from repro.core.backends import GridBackend

        registry = ModelRegistry()
        server = registry.register(
            "orders",
            ("a", "b"),
            SelfTuningKDE(make_sample(), seed=1),
            backend="grid",
        )
        assert server.reader_backend == "grid"
        assert isinstance(server.published.reader.backend, GridBackend)

    def test_registry_rejects_backend_for_prebuilt_server(self):
        server = SnapshotServer(SelfTuningKDE(make_sample(), seed=1))
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="backend"):
            registry.register("orders", ("a", "b"), server, backend="grid")
