"""The 1.x deprecation shims: one warning each, identical behaviour."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.bandwidth import scott_bandwidth
from repro.core.estimator import KernelDensityEstimator
from repro.core.model import SelfTuningKDE
from repro.device.kde_device import DeviceKDE
from repro.device.partition import MultiDeviceKDE
from repro.device.runtime import DeviceContext
from repro.geometry import Box
from repro.serve import ModelRegistry
from repro.serve import registry as registry_module


def _single_deprecation(record) -> warnings.WarningMessage:
    """The recorded list must hold exactly one DeprecationWarning."""
    assert len(record) == 1
    assert issubclass(record[0].category, DeprecationWarning)
    return record[0]


class TestReplacePointsAlias:
    def test_warns_exactly_once_and_delegates(self, small_sample):
        estimator = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        indices = np.array([0, 1])
        rows = np.full((2, 3), 0.25)
        with pytest.warns(DeprecationWarning, match="replace_rows") as record:
            estimator.replace_points(indices, rows)
        _single_deprecation(record)
        np.testing.assert_array_equal(estimator.sample[indices], rows)

    def test_alias_behaves_like_replace_rows(self, small_sample):
        via_new = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        via_old = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        indices = np.array([3, 7, 11])
        rows = np.linspace(-1.0, 1.0, 9).reshape(3, 3)
        via_new.replace_rows(indices, rows)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_old.replace_points(indices, rows)
        np.testing.assert_array_equal(via_new.sample, via_old.sample)
        assert via_new.sample_epoch == via_old.sample_epoch == 1
        # Validation errors pass through the shim unchanged.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(IndexError):
                via_old.replace_points(np.array([10**6]), rows[:1])

    def test_replace_rows_itself_does_not_warn(self, small_sample):
        estimator = KernelDensityEstimator(
            small_sample, scott_bandwidth(small_sample)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            estimator.replace_rows(np.array([0]), np.zeros((1, 3)))


class TestDeviceSetBandwidthAlias:
    def test_warns_exactly_once_and_delegates(self, small_sample):
        context = DeviceContext.for_device("gpu")
        kde = DeviceKDE(small_sample, context, adaptive=False)
        updated = kde.bandwidth * 2.0
        with pytest.warns(DeprecationWarning, match="bandwidth") as record:
            kde.set_bandwidth(updated)
        _single_deprecation(record)
        np.testing.assert_allclose(kde.bandwidth, updated)

    def test_property_setter_matches_old_method(self, small_sample):
        context_a = DeviceContext.for_device("gpu")
        context_b = DeviceContext.for_device("gpu")
        via_new = DeviceKDE(small_sample, context_a, adaptive=False)
        via_old = DeviceKDE(small_sample, context_b, adaptive=False)
        updated = via_new.bandwidth * 0.5
        via_new.bandwidth = updated
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_old.set_bandwidth(updated)
        query = Box([-0.5] * 3, [0.5] * 3)
        assert via_new.estimate(query) == via_old.estimate(query)

    def test_setter_validates(self, small_sample):
        kde = DeviceKDE(
            small_sample, DeviceContext.for_device("gpu"), adaptive=False
        )
        with pytest.raises(ValueError, match="positive"):
            kde.bandwidth = np.zeros(3)


class TestRegisterBackendAlias:
    """``register(backend=...)`` → ``reader_backend=`` (1.1 rename)."""

    @pytest.fixture(autouse=True)
    def _rearm_single_shot(self, monkeypatch):
        # The shim warns once per process; rearm it so each test sees
        # deterministic behaviour regardless of execution order.
        monkeypatch.setattr(registry_module, "_warned_backend_kwarg", False)

    def _model(self, small_sample):
        return SelfTuningKDE(small_sample, seed=0)

    def test_warns_exactly_once_and_delegates(self, small_sample):
        registry = ModelRegistry()
        with pytest.warns(DeprecationWarning, match="reader_backend") as record:
            server = registry.register(
                "t", ("a", "b", "c"), self._model(small_sample), backend="grid"
            )
        _single_deprecation(record)
        assert server.reader_backend == "grid"
        # Single shot: the second use stays quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            other = registry.register(
                "u", ("a", "b", "c"), self._model(small_sample), backend="grid"
            )
        assert other.reader_backend == "grid"

    def test_both_spellings_is_an_error(self, small_sample):
        registry = ModelRegistry()
        with pytest.raises(TypeError, match="deprecated alias"):
            registry.register(
                "t",
                ("a", "b", "c"),
                self._model(small_sample),
                reader_backend="grid",
                backend="cached",
            )

    def test_new_spelling_does_not_warn(self, small_sample):
        registry = ModelRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = registry.register(
                "t",
                ("a", "b", "c"),
                self._model(small_sample),
                reader_backend="grid",
            )
        assert server.reader_backend == "grid"


class TestMultiDeviceSetBandwidthAlias:
    def test_warns_exactly_once_and_broadcasts(self, small_sample):
        contexts = [
            DeviceContext.for_device("gpu"),
            DeviceContext.for_device("cpu"),
        ]
        kde = MultiDeviceKDE(small_sample, contexts)
        updated = kde.bandwidth * 3.0
        with pytest.warns(DeprecationWarning, match="bandwidth") as record:
            kde.set_bandwidth(updated)
        _single_deprecation(record)
        np.testing.assert_allclose(kde.bandwidth, updated)
        for model in kde._models:
            np.testing.assert_allclose(model.bandwidth, updated)
