"""The create_estimator factory facade."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ESTIMATOR_KINDS, MetricsRegistry, create_estimator
from repro.core.estimator import KernelDensityEstimator
from repro.core.model import SelfTuningKDE
from repro.device.kde_device import DeviceKDE
from repro.device.runtime import DeviceContext
from repro.geometry import Box


def test_kinds_tuple_is_public():
    assert set(ESTIMATOR_KINDS) == {
        "kde",
        "self_tuning",
        "device",
        "naru",
        "mscn",
    }
    assert repro.create_estimator is create_estimator


def test_learned_kinds_build_protocol_estimators(small_sample):
    from repro.learned import MSCNRegressor, NaruEstimator

    naru = create_estimator(small_sample, kind="naru", seed=1)
    mscn = create_estimator(small_sample, kind="mscn", seed=1)
    assert isinstance(naru, NaruEstimator)
    assert isinstance(mscn, MSCNRegressor)
    query = Box([-0.5] * 3, [0.5] * 3)
    for estimator in (naru, mscn):
        assert 0.0 <= estimator.estimate(query) <= 1.0
        assert estimator.memory_bytes() > 0


def test_learned_kinds_reject_engine_knobs(small_sample):
    with pytest.raises(ValueError, match="backend"):
        create_estimator(small_sample, kind="naru", backend="cached")
    with pytest.raises(ValueError, match="backend"):
        create_estimator(
            small_sample, kind="mscn", metrics=MetricsRegistry()
        )
    with pytest.raises(ValueError, match="checkpoint"):
        create_estimator(
            small_sample, kind="naru", checkpoint="anywhere.ckpt"
        )


def test_default_kind_is_plain_kde(small_sample):
    estimator = create_estimator(small_sample)
    assert isinstance(estimator, KernelDensityEstimator)
    # Scott's rule is applied when no bandwidth is given.
    assert np.all(estimator.bandwidth > 0)
    value = estimator.estimate(Box([-0.5] * 3, [0.5] * 3))
    assert 0.0 <= value <= 1.0


def test_kde_kind_forwards_backend_and_metrics(small_sample):
    registry = MetricsRegistry()
    estimator = create_estimator(
        small_sample, kind="kde", backend="cached", metrics=registry
    )
    assert estimator.backend.name == "cached"
    assert estimator.obs is registry
    estimator.estimate(Box([-0.5] * 3, [0.5] * 3))
    assert len(registry.traces) == 1


def test_self_tuning_kind(small_sample):
    model = create_estimator(small_sample, kind="self_tuning", seed=3)
    assert isinstance(model, SelfTuningKDE)
    query = Box([-0.5] * 3, [0.5] * 3)
    model.feedback(query, model.estimate(query))


def test_device_kind_builds_context(small_sample):
    kde = create_estimator(small_sample, kind="device", device="cpu")
    assert isinstance(kde, DeviceKDE)
    assert "cpu" in kde.context.spec.name.lower() or "xeon" in (
        kde.context.spec.name.lower()
    )


def test_device_kind_accepts_existing_context(small_sample):
    context = DeviceContext.for_device("gpu")
    kde = create_estimator(small_sample, kind="device", context=context)
    assert kde.context is context


def test_unknown_kind_lists_choices(small_sample):
    with pytest.raises(ValueError, match="self_tuning"):
        create_estimator(small_sample, kind="histogram")


class TestCheckpointWarmStart:
    def _tuned_model(self, small_sample):
        model = create_estimator(small_sample, kind="self_tuning", seed=5)
        dims = small_sample.shape[1]
        query = Box([-0.5] * dims, [0.5] * dims)
        for _ in range(25):
            model.feedback(query, 0.4)
        return model, query

    def test_missing_checkpoint_builds_fresh(self, small_sample, tmp_path):
        estimator = create_estimator(
            small_sample,
            kind="self_tuning",
            seed=5,
            checkpoint=str(tmp_path / "absent.ckpt"),
        )
        assert isinstance(estimator, SelfTuningKDE)

    def test_warm_start_restores_tuned_state(self, small_sample, tmp_path):
        model, query = self._tuned_model(small_sample)
        path = str(tmp_path / "model.ckpt")
        model.snapshot().save(path)
        revived = create_estimator(
            small_sample, kind="self_tuning", seed=99, checkpoint=path
        )
        assert revived.estimate(query) == model.estimate(query)
        assert np.array_equal(revived.bandwidth, model.bandwidth)

    def test_kde_kind_accepts_any_state(self, small_sample, tmp_path):
        model, query = self._tuned_model(small_sample)
        path = str(tmp_path / "model.ckpt")
        model.snapshot().save(path)
        with pytest.warns(UserWarning):
            kde = create_estimator(small_sample, kind="kde", checkpoint=path)
        assert isinstance(kde, KernelDensityEstimator)
        assert kde.selectivity(query) == model.estimate(query)

    def test_kde_view_of_stateful_checkpoint_warns(
        self, small_sample, tmp_path
    ):
        """Regression: restoring a self-tuning checkpoint into the
        static 'kde' view used to drop the tuning state silently."""
        model, _ = self._tuned_model(small_sample)
        path = str(tmp_path / "model.ckpt")
        model.snapshot().save(path)
        with pytest.warns(UserWarning, match="self_tuning"):
            create_estimator(small_sample, kind="kde", checkpoint=path)

    def test_kde_checkpoint_into_kde_does_not_warn(
        self, small_sample, tmp_path, recwarn
    ):
        kde = create_estimator(small_sample, kind="kde")
        path = str(tmp_path / "kde.ckpt")
        kde.snapshot().save(path)
        create_estimator(small_sample, kind="kde", checkpoint=path)
        assert not [
            w for w in recwarn if issubclass(w.category, UserWarning)
        ]

    def test_kind_mismatch_raises(self, small_sample, tmp_path):
        from repro import CheckpointError

        model, _ = self._tuned_model(small_sample)
        path = str(tmp_path / "model.ckpt")
        model.snapshot().save(path)
        with pytest.raises(CheckpointError):
            create_estimator(small_sample, kind="device", checkpoint=path)

    def test_corrupt_checkpoint_raises(self, small_sample, tmp_path):
        from repro import CheckpointError

        model, _ = self._tuned_model(small_sample)
        path = str(tmp_path / "model.ckpt")
        model.snapshot().save(path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            create_estimator(
                small_sample, kind="self_tuning", checkpoint=path
            )

    def test_top_level_exports(self):
        for name in (
            "ModelState",
            "CheckpointError",
            "ModelRegistry",
            "SnapshotServer",
            "CheckpointManager",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__
