"""Tests for the shared Box / RangeQuery geometry type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import Box, RangeQuery, intersect, union_bounds


def boxes(dimensions: int = 3):
    """Hypothesis strategy generating valid boxes."""
    coords = hnp.arrays(
        np.float64,
        shape=(2, dimensions),
        elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    )
    return coords.map(
        lambda pair: Box(np.minimum(pair[0], pair[1]), np.maximum(pair[0], pair[1]))
    )


class TestConstruction:
    def test_basic(self):
        box = Box([0.0, 0.0], [1.0, 2.0])
        assert box.dimensions == 2
        assert box.volume() == pytest.approx(2.0)
        np.testing.assert_array_equal(box.center, [0.5, 1.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Box([1.0], [0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Box([0.0, 0.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Box([], [])

    def test_rejects_matrix_bounds(self):
        with pytest.raises(ValueError):
            Box(np.zeros((2, 2)), np.ones((2, 2)))

    def test_from_center(self):
        box = Box.from_center([1.0, 1.0], [2.0, 4.0])
        np.testing.assert_array_equal(box.low, [0.0, -1.0])
        np.testing.assert_array_equal(box.high, [2.0, 3.0])

    def test_from_center_rejects_negative_width(self):
        with pytest.raises(ValueError):
            Box.from_center([0.0], [-1.0])

    def test_unit(self):
        box = Box.unit(4)
        assert box.volume() == pytest.approx(1.0)
        assert box.dimensions == 4

    def test_bounding(self):
        points = np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        box = Box.bounding(points)
        np.testing.assert_array_equal(box.low, [0.0, 1.0])
        np.testing.assert_array_equal(box.high, [2.0, 5.0])

    def test_bounding_margin(self):
        box = Box.bounding(np.array([[1.0]]), margin=0.5)
        np.testing.assert_array_equal(box.low, [0.5])
        np.testing.assert_array_equal(box.high, [1.5])

    def test_bounding_rejects_empty(self):
        with pytest.raises(ValueError):
            Box.bounding(np.empty((0, 2)))

    def test_range_query_alias(self):
        assert RangeQuery is Box


class TestPredicates:
    def test_contains_points(self):
        box = Box([0.0, 0.0], [1.0, 1.0])
        points = np.array([[0.5, 0.5], [1.5, 0.5], [1.0, 1.0]])
        np.testing.assert_array_equal(
            box.contains_points(points), [True, False, True]
        )

    def test_contains_points_single(self):
        box = Box([0.0], [1.0])
        assert box.contains_points(np.array([0.5]))[0]

    def test_contains_box(self):
        outer = Box([0.0, 0.0], [2.0, 2.0])
        inner = Box([0.5, 0.5], [1.0, 1.0])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_intersects(self):
        a = Box([0.0], [1.0])
        b = Box([0.5], [2.0])
        c = Box([1.5], [2.0])
        assert a.intersects(b)
        assert not a.intersects(c)
        assert b.intersects(c)

    def test_intersects_at_boundary(self):
        a = Box([0.0], [1.0])
        b = Box([1.0], [2.0])
        assert a.intersects(b)

    def test_degenerate(self):
        assert Box([0.0, 0.0], [0.0, 1.0]).is_degenerate()
        assert not Box([0.0, 0.0], [0.1, 1.0]).is_degenerate()


class TestOperations:
    def test_intersect(self):
        a = Box([0.0, 0.0], [2.0, 2.0])
        b = Box([1.0, -1.0], [3.0, 1.0])
        result = a.intersect(b)
        assert result == Box([1.0, 0.0], [2.0, 1.0])

    def test_intersect_disjoint(self):
        assert Box([0.0], [1.0]).intersect(Box([2.0], [3.0])) is None

    def test_module_level_intersect(self):
        assert intersect(Box([0.0], [2.0]), Box([1.0], [3.0])) == Box([1.0], [2.0])

    def test_clip_to(self):
        box = Box([-1.0], [5.0])
        assert box.clip_to(Box([0.0], [1.0])) == Box([0.0], [1.0])

    def test_clip_to_disjoint_raises(self):
        with pytest.raises(ValueError):
            Box([0.0], [1.0]).clip_to(Box([2.0], [3.0]))

    def test_expand(self):
        box = Box([0.0], [2.0]).expand(2.0)
        assert box == Box([-1.0], [3.0])

    def test_expand_rejects_negative(self):
        with pytest.raises(ValueError):
            Box([0.0], [1.0]).expand(-1.0)

    def test_translate(self):
        assert Box([0.0], [1.0]).translate([2.0]) == Box([2.0], [3.0])

    def test_corners(self):
        corners = Box([0.0, 0.0], [1.0, 1.0]).corners()
        assert corners.shape == (4, 2)
        assert {tuple(c) for c in corners} == {
            (0.0, 0.0),
            (0.0, 1.0),
            (1.0, 0.0),
            (1.0, 1.0),
        }

    def test_sample_uniform(self):
        rng = np.random.default_rng(0)
        box = Box([0.0, 10.0], [1.0, 20.0])
        points = box.sample_uniform(500, rng)
        assert points.shape == (500, 2)
        assert box.contains_points(points).all()

    def test_iter(self):
        intervals = list(Box([0.0, 1.0], [2.0, 3.0]))
        assert intervals == [(0.0, 2.0), (1.0, 3.0)]

    def test_union_bounds(self):
        result = union_bounds([Box([0.0], [1.0]), Box([-1.0], [0.5])])
        assert result == Box([-1.0], [1.0])

    def test_union_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            union_bounds([])

    def test_hash_and_eq(self):
        a = Box([0.0], [1.0])
        b = Box([0.0], [1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Box([0.0], [2.0])
        assert len({a, b}) == 1

    def test_eq_other_type(self):
        assert Box([0.0], [1.0]) != "box"


class TestProperties:
    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_center_inside(self, box):
        assert box.contains_points(box.center[None, :])[0]

    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_volume_non_negative(self, box):
        assert box.volume() >= 0.0

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_intersection_within_both(self, a, b):
        result = a.intersect(b)
        if result is not None:
            assert a.contains_box(result)
            assert b.contains_box(result)
            assert result.volume() <= min(a.volume(), b.volume()) + 1e-9

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_intersection_symmetric(self, a, b):
        ab = a.intersect(b)
        ba = b.intersect(a)
        assert (ab is None) == (ba is None)
        if ab is not None:
            assert ab == ba

    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_union_of_one(self, box):
        assert union_bounds([box]) == box
