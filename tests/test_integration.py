"""End-to-end integration tests across the whole public API.

Each test tells one complete story a downstream user would live through:
load data into the substrate, build estimators, run workloads through
the feedback loop, mutate the database, and consume the estimates from
the query optimizer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Box, KernelDensityEstimator, SelfTuningKDE, scott_bandwidth
from repro.baselines import (
    AdaptiveKDE,
    BatchKDE,
    HeuristicKDE,
    STHolesHistogram,
    kde_sample_size,
    memory_budget_bytes,
    sthole_bucket_budget,
)
from repro.core import QueryFeedback
from repro.datasets import gunopulos_synthetic
from repro.db import FeedbackLoop, Table
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def warehouse():
    """A populated table shared by the integration stories."""
    data = gunopulos_synthetic(rows=20_000, dimensions=3, seed=42)
    return Table(3, initial_rows=data)


class TestFullLifecycle:
    def test_analyze_estimate_feedback_maintain(self, warehouse, rng):
        """The complete Figure 3 loop, including database mutations."""
        sample = warehouse.analyze(512, rng)
        model = SelfTuningKDE(
            sample,
            row_source=warehouse,
            population_size=len(warehouse),
            seed=0,
        )
        loop = FeedbackLoop(warehouse, AdaptiveKDE(
            sample, row_source=warehouse,
            population_size=len(warehouse), seed=0,
        )).attach()

        queries = generate_workload(
            warehouse.rows(), "DT", 60, rng, target=0.01
        )
        loop.run_workload(queries)
        baseline_error = loop.mean_absolute_error(last=30)
        assert baseline_error < 0.05

        # Mutate: bulk-delete one corner, insert a new cluster.
        warehouse.delete_in(Box([0.0, 0.0, 0.0], [0.2, 0.2, 0.2]))
        new_cluster = 0.9 + rng.normal(scale=0.01, size=(500, 3))
        warehouse.insert_many(np.clip(new_cluster, 0, 1))
        # The estimator is still functional and bounded after the churn.
        for query in queries[:10]:
            estimate = loop.estimator.estimate(query)
            assert 0.0 <= estimate <= 1.0

    def test_all_estimators_one_budget(self, warehouse, rng):
        """Every estimator is constructible under the shared budget and
        produces sane estimates on the same workload."""
        budget = memory_budget_bytes(3)
        sample = warehouse.analyze(kde_sample_size(3, budget), rng)
        train = generate_workload(warehouse.rows(), "DV", 30, rng)
        feedback = [
            QueryFeedback(q, warehouse.selectivity(q)) for q in train
        ]
        estimators = [
            HeuristicKDE(sample),
            BatchKDE(sample, feedback, starts=2, seed=0),
            STHolesHistogram(
                warehouse.bounds(margin=1e-9),
                row_count=len(warehouse),
                max_buckets=sthole_bucket_budget(3, budget),
                region_count=warehouse.count,
            ),
        ]
        test = generate_workload(warehouse.rows(), "DV", 20, rng)
        for estimator in estimators:
            for query in test:
                estimate = estimator.estimate(query)
                assert 0.0 <= estimate <= 1.0
            assert estimator.memory_bytes() <= budget * 1.1

    def test_join_pipeline(self, warehouse, rng):
        """PK-FK sample -> post-join KDE -> optimizer consumption."""
        from repro.db import pk_fk_join_sample
        from repro.db.optimizer import (
            EstimatedCostModel,
            JoinQuery,
            optimize_join_order,
            plan_quality_ratio,
        )

        keys = np.arange(1000.0)
        dimension = Table(
            2, initial_rows=np.column_stack([keys, rng.normal(size=1000)])
        )
        fact = Table(
            2,
            initial_rows=np.column_stack(
                [
                    rng.integers(0, 1000, 15_000).astype(float),
                    rng.normal(size=15_000),
                ]
            ),
        )
        join_sample = pk_fk_join_sample(fact, dimension, 0, 0, 256, rng)
        assert join_sample.shape == (256, 4)

        query = JoinQuery(
            tables={"fact": fact, "dim": dimension},
            predicates={"dim": Box([0.0, -0.5], [100.0, 0.5])},
            joins=[("fact", 0, "dim", 0)],
        )
        model = EstimatedCostModel(
            {
                "fact": HeuristicKDE(fact.analyze(256, rng)),
                "dim": HeuristicKDE(dimension.analyze(256, rng)),
            },
            {("fact", 0, "dim", 0): 1.0 / 1000.0},
        )
        plan = optimize_join_order(query, model)
        assert plan_quality_ratio(query, plan) < 2.0


class TestInvariances:
    @given(st.floats(-100.0, 100.0), st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_translation_and_scale_equivariance(self, shift, scale):
        """Shifting/scaling data, query and bandwidth together leaves the
        selectivity estimate unchanged — the estimator has no hidden
        dependence on the coordinate frame."""
        rng = np.random.default_rng(99)
        sample = rng.normal(size=(128, 2))
        h = scott_bandwidth(sample)
        box = Box([-1.0, -0.5], [1.0, 0.5])
        base = KernelDensityEstimator(sample, h).selectivity(box)
        transformed = KernelDensityEstimator(
            sample * scale + shift, h * scale
        ).selectivity(
            Box(box.low * scale + shift, box.high * scale + shift)
        )
        assert transformed == pytest.approx(base, abs=1e-9)

    def test_estimate_independent_of_sample_order(self, rng):
        sample = rng.normal(size=(200, 2))
        h = scott_bandwidth(sample)
        box = Box([-0.5, -0.5], [0.5, 0.5])
        shuffled = sample[rng.permutation(200)]
        a = KernelDensityEstimator(sample, h).selectivity(box)
        b = KernelDensityEstimator(shuffled, h).selectivity(box)
        assert a == pytest.approx(b, abs=1e-12)

    def test_duplicate_points_weighting(self, rng):
        """Duplicating every sample point changes nothing: the estimate
        is an average, not a sum."""
        sample = rng.normal(size=(100, 2))
        h = scott_bandwidth(sample)
        box = Box([-1.0, -1.0], [1.0, 1.0])
        single = KernelDensityEstimator(sample, h).selectivity(box)
        doubled = KernelDensityEstimator(
            np.vstack([sample, sample]), h
        ).selectivity(box)
        assert doubled == pytest.approx(single, abs=1e-12)
