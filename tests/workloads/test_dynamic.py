"""Tests for the evolving-cluster workload of the Section 6.5 experiment."""

import numpy as np
import pytest

from repro.db import Table
from repro.workloads.dynamic import (
    DeleteClusterEvent,
    EvolvingClusterWorkload,
    InsertEvent,
    QueryEvent,
)


@pytest.fixture
def small_workload():
    return EvolvingClusterWorkload(
        dimensions=2,
        initial_tuples=600,
        tuples_per_cycle=200,
        cycles=3,
        queries_per_cycle=15,
        seed=0,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dimensions=0),
            dict(initial_tuples=1),
            dict(tuples_per_cycle=0),
            dict(cycles=0),
            dict(queries_per_cycle=-1),
            dict(recency_bias=0.0),
            dict(recency_bias=1.5),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EvolvingClusterWorkload(**kwargs)


class TestInitialData:
    def test_shape(self, small_workload):
        data = small_workload.initial_data()
        assert data.shape == (600, 2)

    def test_deterministic(self, small_workload):
        np.testing.assert_array_equal(
            small_workload.initial_data(), small_workload.initial_data()
        )

    def test_paper_defaults(self):
        workload = EvolvingClusterWorkload(dimensions=5)
        assert workload.initial_data().shape == (4500, 5)
        assert workload.cycles == 10
        assert workload.tuples_per_cycle == 1500

    def test_three_clusters(self, small_workload):
        """The initial load forms exactly three tight groups."""
        data = small_workload.initial_data()
        # Points within 0.15 of each other belong to the same cluster at
        # scale 0.03; count distinct groups greedily.
        groups = []
        for point in data:
            for group in groups:
                if np.linalg.norm(point - group) < 0.3:
                    break
            else:
                groups.append(point)
        assert len(groups) == 3


class TestEventStream:
    def test_event_counts(self, small_workload):
        events = list(small_workload.events())
        inserts = [e for e in events if isinstance(e, InsertEvent)]
        deletes = [e for e in events if isinstance(e, DeleteClusterEvent)]
        queries = [e for e in events if isinstance(e, QueryEvent)]
        assert len(inserts) == 3 * 200
        assert len(deletes) == 3
        assert len(queries) == 3 * 15

    def test_deterministic(self, small_workload):
        first = [
            type(e).__name__ for e in small_workload.events()
        ]
        second = [
            type(e).__name__ for e in small_workload.events()
        ]
        assert first == second

    def test_queries_hit_target_selectivity(self, small_workload):
        selectivities = [
            e.true_selectivity
            for e in small_workload.events()
            if isinstance(e, QueryEvent)
        ]
        assert np.median(selectivities) == pytest.approx(0.01, abs=0.01)

    def test_deletes_oldest_first(self, small_workload):
        deletes = [
            e for e in small_workload.events() if isinstance(e, DeleteClusterEvent)
        ]
        assert [d.cluster_id for d in deletes] == [0, 1, 2]

    def test_replay_against_table(self, small_workload):
        """The event stream is consistent with an actual table replay:
        the recorded true selectivity matches the table's count."""
        table = Table(2, initial_rows=small_workload.initial_data())
        for event in small_workload.events():
            if isinstance(event, InsertEvent):
                table.insert(event.row)
            elif isinstance(event, DeleteClusterEvent):
                table.delete_in(event.region)
            else:
                assert table.selectivity(event.query) == pytest.approx(
                    event.true_selectivity, abs=1e-9
                )

    def test_population_returns_to_start_each_cycle(self, small_workload):
        """Insert 200, delete one ~200-point cluster: net size roughly
        constant across cycles (the paper's sawtooth)."""
        table = Table(2, initial_rows=small_workload.initial_data())
        sizes = []
        for event in small_workload.events():
            if isinstance(event, InsertEvent):
                table.insert(event.row)
            elif isinstance(event, DeleteClusterEvent):
                table.delete_in(event.region)
                sizes.append(len(table))
        assert all(500 <= s <= 700 for s in sizes)

    def test_queries_favor_new_clusters(self):
        workload = EvolvingClusterWorkload(
            dimensions=2,
            initial_tuples=300,
            tuples_per_cycle=300,
            cycles=4,
            queries_per_cycle=40,
            recency_bias=0.3,
            seed=1,
        )
        rng = np.random.default_rng(1)
        centers = workload._cluster_centers(rng)
        # Track which cluster each query centers on, per cycle.
        cycle = 0
        newest_hits = total = 0
        for event in workload.events():
            if isinstance(event, DeleteClusterEvent):
                cycle += 1
            elif isinstance(event, QueryEvent):
                distances = [
                    np.linalg.norm(event.query.center - c) for c in centers
                ]
                nearest = int(np.argmin(distances))
                newest_live = workload.INITIAL_CLUSTERS + cycle
                total += 1
                if nearest == newest_live:
                    newest_hits += 1
        # With bias 0.3 the newest cluster should dominate the queries.
        assert newest_hits / total > 0.4
