"""Tests for the DT/DV/UT/UV workload generators."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.workloads import WORKLOAD_KINDS, WorkloadSpec, generate_workload


@pytest.fixture
def clustered_data(rng):
    return np.vstack(
        [
            rng.normal(loc=0.0, scale=0.5, size=(10_000, 2)),
            rng.normal(loc=5.0, scale=0.5, size=(10_000, 2)),
        ]
    )


class TestWorkloadSpec:
    def test_decoding(self):
        assert WorkloadSpec.from_kind("DT") == WorkloadSpec("data", "selectivity")
        assert WorkloadSpec.from_kind("DV") == WorkloadSpec("data", "volume")
        assert WorkloadSpec.from_kind("UT") == WorkloadSpec("uniform", "selectivity")
        assert WorkloadSpec.from_kind("UV") == WorkloadSpec("uniform", "volume")

    def test_case_insensitive(self):
        assert WorkloadSpec.from_kind("dt") == WorkloadSpec.from_kind("DT")

    def test_unknown(self):
        with pytest.raises(ValueError):
            WorkloadSpec.from_kind("XX")


class TestValidation:
    def test_bad_inputs(self, clustered_data, rng):
        with pytest.raises(ValueError):
            generate_workload(np.empty((0, 2)), "DT", 5, rng)
        with pytest.raises(ValueError):
            generate_workload(clustered_data, "DT", -1, rng)
        with pytest.raises(ValueError):
            generate_workload(clustered_data, "DT", 5, rng, target=0.0)
        with pytest.raises(ValueError):
            generate_workload(clustered_data, "ZZ", 5, rng)

    def test_zero_count(self, clustered_data, rng):
        assert generate_workload(clustered_data, "DT", 0, rng) == []


class TestTargets:
    @pytest.mark.parametrize("kind", ["DT", "UT"])
    def test_selectivity_targets_met(self, clustered_data, rng, kind):
        queries = generate_workload(
            clustered_data, kind, 25, rng, target=0.01
        )
        selectivities = [
            float(q.contains_points(clustered_data).mean()) for q in queries
        ]
        # Centers in empty corners (UT) may not reach the target exactly;
        # the bulk of the workload must.
        near_target = [
            s for s in selectivities if 0.005 <= s <= 0.02
        ]
        assert len(near_target) >= len(queries) * 0.7

    @pytest.mark.parametrize("kind", ["DV", "UV"])
    def test_volume_targets_met(self, clustered_data, rng, kind):
        bounds = Box.bounding(clustered_data)
        queries = generate_workload(
            clustered_data, kind, 25, rng, target=0.01, bounds=bounds
        )
        for q in queries:
            fraction = q.volume() / bounds.volume()
            # Clipping at the domain boundary can only shrink the box.
            assert fraction <= 0.011
            assert fraction > 0.0005

    def test_dt_returns_similar_counts(self, clustered_data, rng):
        """The DT characterisation: roughly the same number of tuples."""
        queries = generate_workload(clustered_data, "DT", 20, rng, target=0.01)
        counts = np.array(
            [int(q.contains_points(clustered_data).sum()) for q in queries]
        )
        assert counts.std() < counts.mean()

    def test_uv_mostly_empty(self, clustered_data, rng):
        """The UV characterisation: mostly empty queries."""
        queries = generate_workload(clustered_data, "UV", 40, rng, target=0.01)
        selectivities = np.array(
            [float(q.contains_points(clustered_data).mean()) for q in queries]
        )
        assert np.median(selectivities) < 0.001

    def test_dv_diverse_selectivities(self, clustered_data, rng):
        """The DV characterisation: a wide spectrum of selectivities."""
        queries = generate_workload(clustered_data, "DV", 40, rng, target=0.01)
        selectivities = np.array(
            [float(q.contains_points(clustered_data).mean()) for q in queries]
        )
        # Wide spectrum: an order of magnitude between extremes and a
        # large coefficient of variation.
        assert selectivities.max() > 10 * selectivities.min()
        assert selectivities.std() > 0.3 * selectivities.mean()


class TestCenters:
    def test_data_centers_in_clusters(self, clustered_data, rng):
        queries = generate_workload(clustered_data, "DV", 30, rng)
        near_cluster = 0
        for q in queries:
            center = q.center
            if (
                np.linalg.norm(center - 0.0) < 2.0
                or np.linalg.norm(center - 5.0) < 2.0
            ):
                near_cluster += 1
        assert near_cluster >= 25

    def test_uniform_centers_spread(self, clustered_data, rng):
        bounds = Box.bounding(clustered_data)
        queries = generate_workload(
            clustered_data, "UV", 60, rng, bounds=bounds
        )
        centers = np.array([q.center for q in queries])
        # Uniform centers cover most of the domain in every dimension,
        # unlike data-distributed centers which stick to the clusters.
        span = centers.max(axis=0) - centers.min(axis=0)
        assert (span > 0.6 * bounds.widths).all()

    def test_queries_within_bounds(self, clustered_data, rng):
        bounds = Box.bounding(clustered_data)
        for kind in WORKLOAD_KINDS:
            for q in generate_workload(
                clustered_data, kind, 10, rng, bounds=bounds
            ):
                assert bounds.contains_box(q)

    def test_search_data_subsample(self, clustered_data, rng):
        """Queries built against a subsample remain near-target on the
        full dataset."""
        subsample = clustered_data[
            rng.choice(len(clustered_data), size=2000, replace=False)
        ]
        queries = generate_workload(
            clustered_data, "DT", 15, rng, search_data=subsample
        )
        selectivities = [
            float(q.contains_points(clustered_data).mean()) for q in queries
        ]
        assert np.median(selectivities) == pytest.approx(0.01, abs=0.008)
