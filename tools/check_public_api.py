#!/usr/bin/env python
"""Lint the public API surface of every ``repro`` module.

Checks ``__all__`` in both directions for each module under ``repro``:

* **completeness** — every public top-level symbol *defined in the
  module* (public name, not underscore-prefixed, whose ``__module__``
  is the module itself, plus re-exports the module's docstring claims)
  must be listed in ``__all__`` when the module declares one;
* **soundness** — every name in ``__all__`` must actually exist in the
  module, with no duplicates.

Modules without ``__all__`` are only checked for *having* one if they
are packages' ``__init__`` files (the curated entry points); leaf
modules may rely on underscore conventions.

Exit status is non-zero when any violation is found, so CI can gate on
it: ``PYTHONPATH=src python tools/check_public_api.py``.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from types import ModuleType
from typing import List

ROOT_PACKAGE = "repro"

#: Modules that must exist and be importable: subsystems other layers
#: (serving glue, checkpoint tooling) depend on by name.  A rename or
#: packaging slip that drops one of these should fail loudly here even
#: though walk_packages would silently just not find it.
REQUIRED_MODULES = (
    "repro.core.backends.grid",
    "repro.core.backends.hashing",
    "repro.core.join",
    "repro.core.state",
    "repro.db.optimizer",
    "repro.db.replay",
    "repro.faults",
    "repro.forecast",
    "repro.forecast.controller",
    "repro.forecast.drift",
    "repro.forecast.forecasters",
    "repro.forecast.taps",
    "repro.learned",
    "repro.learned.mscn",
    "repro.learned.naru",
    "repro.serve",
    "repro.serve.checkpoint",
    "repro.serve.frontend",
    "repro.serve.keys",
    "repro.serve.registry",
    "repro.serve.server",
)

#: Defined-elsewhere symbols a module may intentionally re-export
#: without listing (typing helpers and the like never count as public).
_IGNORED_TYPES = (ModuleType,)


def iter_modules() -> List[str]:
    package = importlib.import_module(ROOT_PACKAGE)
    names = [ROOT_PACKAGE]
    for info in pkgutil.walk_packages(package.__path__, f"{ROOT_PACKAGE}."):
        names.append(info.name)
    return names


def locally_defined_public(module: ModuleType) -> List[str]:
    """Public top-level names the module itself defines."""
    names = []
    for name, value in vars(module).items():
        if name.startswith("_"):
            continue
        if isinstance(value, _IGNORED_TYPES):
            continue
        defined_in = getattr(value, "__module__", None)
        if defined_in != module.__name__:
            continue
        if not (
            inspect.isclass(value)
            or inspect.isfunction(value)
        ):
            continue
        names.append(name)
    return names


def check_module(name: str) -> List[str]:
    module = importlib.import_module(name)
    problems: List[str] = []
    declared = getattr(module, "__all__", None)

    is_package = hasattr(module, "__path__")
    if declared is None:
        if is_package:
            problems.append(f"{name}: package has no __all__")
        return problems

    if len(set(declared)) != len(declared):
        duplicates = sorted(
            entry for entry in set(declared) if declared.count(entry) > 1
        )
        problems.append(f"{name}: duplicate __all__ entries {duplicates}")

    for entry in declared:
        if not hasattr(module, entry):
            problems.append(
                f"{name}: __all__ lists {entry!r} which does not exist"
            )

    missing = [
        public
        for public in locally_defined_public(module)
        if public not in declared
    ]
    if missing:
        problems.append(
            f"{name}: public symbols missing from __all__: {sorted(missing)}"
        )
    return problems


def main() -> int:
    problems: List[str] = []
    modules = iter_modules()
    for required in REQUIRED_MODULES:
        if required not in modules:
            problems.append(
                f"{required}: required module missing from the package tree"
            )
    for name in modules:
        try:
            problems.extend(check_module(name))
        except Exception as error:  # import failure is itself a finding
            problems.append(f"{name}: import failed: {error!r}")
    if problems:
        print("public API lint FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"public API lint OK ({len(iter_modules())} modules checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
